//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p paxml-bench --release --bin experiments -- all
//! cargo run -p paxml-bench --release --bin experiments -- exp1 [--scale S]
//! cargo run -p paxml-bench --release --bin experiments -- exp2 [--scale S]
//! cargo run -p paxml-bench --release --bin experiments -- exp3 [--scale S]
//! cargo run -p paxml-bench --release --bin experiments -- queries
//! cargo run -p paxml-bench --release --bin experiments -- topologies
//! ```
//!
//! `--scale S` multiplies every data size (default 1.0; the default maps the
//! paper's 100 MB to 5 virtual MB ≈ 12,500 nodes). Output is an aligned
//! table followed by a CSV block per figure.

use paxml_bench::{experiment1, experiment2, format_csv, format_table, Point, Series};
use paxml_fragment::FragmentId;
use paxml_xmark::{clientele_fragmentation, ft1, ft2, PAPER_QUERIES};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("all");
    let scale = parse_flag(&args, "--scale").unwrap_or(1.0);
    let seed = parse_flag(&args, "--seed").map(|s| s as u64).unwrap_or(42);

    match command {
        "queries" => queries(),
        "topologies" => topologies(scale, seed),
        "exp1" => exp1(scale, seed),
        "exp2" => exp2(scale, seed),
        "exp3" => exp3(scale, seed),
        "traffic" => traffic(scale, seed),
        "all" => {
            queries();
            topologies(scale, seed);
            exp1(scale, seed);
            exp2(scale, seed);
            exp3(scale, seed);
            traffic(scale, seed);
        }
        other => {
            eprintln!(
                "unknown command {other:?}; expected queries|topologies|exp1|exp2|exp3|traffic|all"
            );
            std::process::exit(2);
        }
    }
}

fn parse_flag(args: &[String], name: &str) -> Option<f64> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}

/// Fig. 7: the experiment queries.
fn queries() {
    println!("# Figure 7 — experiment queries");
    for (name, text) in PAPER_QUERIES {
        let compiled = paxml_xpath::compile_text(text).unwrap();
        println!(
            "{name}: {text}\n      selection path: {}   |SVect|={} |QVect|={} qualifiers={} descendant-axis={}",
            compiled.selection_path,
            compiled.svect_len(),
            compiled.qvect_len(),
            compiled.has_qualifiers(),
            compiled.selection_has_descendant(),
        );
    }
    println!();
}

/// Fig. 8 (plus the running example): the fragment-tree topologies.
fn topologies(scale: f64, seed: u64) {
    println!("# Figure 8 — fragment trees");

    let (_, clientele) = clientele_fragmentation();
    println!("Running example (Fig. 2/6): {} fragments", clientele.fragment_count());
    print_ft(&clientele);

    let (_, ft1_frag) = ft1(5, 5.0 * scale, seed);
    println!("FT1 with 5 fragments ({} vMB total):", 5.0 * scale);
    print_ft(&ft1_frag);

    let (_, ft2_frag) = ft2(5.0 * scale, seed);
    println!("FT2 ({} vMB total):", 5.0 * scale);
    print_ft(&ft2_frag);
    println!();
}

fn print_ft(fragmented: &paxml_fragment::FragmentedTree) {
    let ft = &fragmented.fragment_tree;
    for &id in ft.ids() {
        let fragment = fragmented.fragment(id).unwrap();
        let parent = ft.parent(id).map(|p| p.to_string()).unwrap_or_else(|| "-".to_string());
        let annotation =
            ft.annotation(id).map(|a| a.to_string()).unwrap_or_else(|| "(root)".to_string());
        println!(
            "  {id}: parent={parent:<3} root=<{}> nodes={:<6} annotation={annotation}",
            fragment.root_label,
            fragment.size(),
        );
    }
    let _ = FragmentId::ROOT;
}

/// Experiment 1 / Fig. 9.
fn exp1(scale: f64, seed: u64) {
    let total_vmb = 5.0 * scale; // the paper's constant 100 MB
    let points = experiment1(total_vmb, 10, seed);
    let fig9a: Vec<Point> = points.iter().filter(|p| p.query == "Q1").cloned().collect();
    let fig9b: Vec<Point> = points.iter().filter(|p| p.query == "Q4").cloned().collect();
    println!(
        "{}",
        format_table(
            &format!("Figure 9(a) — Q1 evaluation time vs fragmentation ({total_vmb} vMB total)"),
            &fig9a,
            "fragments"
        )
    );
    println!("{}", format_csv(&fig9a, "fragments"));
    println!(
        "{}",
        format_table(
            &format!("Figure 9(b) — Q4 evaluation time vs fragmentation ({total_vmb} vMB total)"),
            &fig9b,
            "fragments"
        )
    );
    println!("{}", format_csv(&fig9b, "fragments"));
}

/// Experiment 2 / Fig. 10.
fn exp2(scale: f64, seed: u64) {
    let points = experiment2(5.0 * scale, 14.0 * scale, 10, seed);
    for (figure, query, series) in [
        ("Figure 10(a)", "Q1", vec![Series::Pax3Na, Series::Pax3Xa]),
        ("Figure 10(b)", "Q2", vec![Series::Pax3Na, Series::Pax3Xa]),
        ("Figure 10(c)", "Q3", vec![Series::Pax3Na, Series::Pax2Na, Series::Pax2Xa]),
        ("Figure 10(d)", "Q4", vec![Series::Pax3Na, Series::Pax2Na]),
    ] {
        let subset: Vec<Point> = points
            .iter()
            .filter(|p| p.query == query && series.contains(&p.series))
            .cloned()
            .collect();
        println!(
            "{}",
            format_table(
                &format!("{figure} — {query} parallel evaluation time vs data size"),
                &subset,
                "vMB"
            )
        );
        println!("{}", format_csv(&subset, "vMB"));
    }
}

/// The §3.4 communication-cost analysis as a table: network bytes of the
/// partial-evaluation algorithms vs. the ship-everything baseline as the
/// data grows. The partial-evaluation rows must stay essentially flat (they
/// grow only with the answer set), the naive row must grow linearly with the
/// document.
fn traffic(scale: f64, seed: u64) {
    use paxml_bench::run;
    use paxml_xmark::ft1;

    println!("# Section 3.4 — network traffic vs data size (FT1, 8 fragments, query Q1)");
    println!(
        "{:<8} {:>10} {:>14} {:>14} {:>14} {:>10}",
        "vMB", "nodes", "PaX2 bytes", "PaX3 bytes", "Naive bytes", "answers"
    );
    for step in 1..=5 {
        let vmb = scale * step as f64;
        let (tree, fragmented) = ft1(8, vmb, seed);
        let q1 = paxml_bench::paper_query("Q1");
        let pax2 = run(Series::Pax2Na, &fragmented, 8, q1);
        let pax3 = run(Series::Pax3Na, &fragmented, 8, q1);
        let naive = run(Series::Naive, &fragmented, 8, q1);
        println!(
            "{:<8.2} {:>10} {:>14} {:>14} {:>14} {:>10}",
            vmb,
            tree.node_count(),
            pax2.network_bytes(),
            pax3.network_bytes(),
            naive.network_bytes(),
            pax2.answers().len(),
        );
    }
    println!();
}

/// Experiment 3 / Fig. 11 — same sweep, total computation time is the metric
/// of interest (the `total(ms)` column).
fn exp3(scale: f64, seed: u64) {
    let points = experiment2(5.0 * scale, 14.0 * scale, 10, seed);
    for (figure, query, series) in [
        ("Figure 11(a)", "Q1", vec![Series::Pax3Na, Series::Pax3Xa]),
        ("Figure 11(b)", "Q2", vec![Series::Pax3Na, Series::Pax3Xa]),
        ("Figure 11(c)", "Q3", vec![Series::Pax3Na, Series::Pax2Na, Series::Pax2Xa]),
        ("Figure 11(d)", "Q4", vec![Series::Pax3Na, Series::Pax2Na]),
    ] {
        let subset: Vec<Point> = points
            .iter()
            .filter(|p| p.query == query && series.contains(&p.series))
            .cloned()
            .collect();
        println!(
            "{}",
            format_table(
                &format!("{figure} — {query} total computation time vs data size"),
                &subset,
                "vMB"
            )
        );
        println!("{}", format_csv(&subset, "vMB"));
    }
}

//! Experiment 9 (new in this repository, beyond the paper): read latency
//! under a continuous update stream.
//!
//! The epoch-versioned server promises that updates never block readers:
//! an execution pins the deployment epoch current at entry and an update
//! builds the next epoch concurrently, publishing with one pointer swap.
//! This experiment puts a number on that promise. Closed-loop reader
//! threads execute prepared PaX2 queries against one shared server while a
//! writer thread streams `apply_updates` batches back-to-back, and the
//! client-observed read latencies are compared against the same reader run
//! on an idle server. If readers queued behind the writer — the old
//! writer-exclusive behaviour — the streaming p99 would inflate by the
//! update round-trip; with epoch snapshots the p50/p99 curves stay flat.
//!
//! A report table prints both latency profiles (and the number of epochs
//! the writer managed to publish mid-run) before the timed Criterion
//! groups run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use paxml_core::{server::PaxServer, Algorithm, PreparedQuery};
use paxml_distsim::Placement;
use paxml_fragment::FragmentedTree;
use paxml_xmark::{ft2, UpdateWorkload};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const SEED: u64 = 42;
const SITES: usize = 10;
const VMB: f64 = 1.0;
const READER_COUNTS: [usize; 3] = [1, 2, 4];
const ITERS_PER_READER: usize = 12;
const OPS_PER_BATCH: usize = 4;
const FRAGMENTS_PER_BATCH: usize = 2;

/// The read mix: one cheap selection, one qualifier-heavy query.
const QUERIES: [&str; 2] = [
    "/sites/site/people/person/name",
    "/sites/site/people/person[profile/age > 20 and address/country=\"US\"]/creditcard",
];

struct Workbench {
    fragmented: FragmentedTree,
    node_count: usize,
}

fn workbench() -> Workbench {
    let (tree, fragmented) = ft2(VMB, SEED);
    let node_count = tree.all_nodes().count();
    Workbench { fragmented, node_count }
}

/// A PaX2 server with every query prepared and its residual cache warm, so
/// the measured loop is the steady serving state.
fn warm_server(fragmented: &FragmentedTree) -> (Arc<PaxServer>, Arc<Vec<PreparedQuery>>) {
    let server = Arc::new(
        PaxServer::builder()
            .algorithm(Algorithm::PaX2)
            .placement(Placement::RoundRobin)
            .sites(SITES)
            .deploy(fragmented)
            .expect("valid configuration"),
    );
    let queries: Vec<PreparedQuery> = QUERIES.iter().map(|q| server.prepare(q).unwrap()).collect();
    for query in &queries {
        server.execute(query).unwrap();
    }
    (server, Arc::new(queries))
}

/// One mixed run: `readers` closed-loop reader threads, and — when
/// `stream_updates` — one writer streaming update batches until the
/// readers drain. Returns the wall-clock time until the *readers* drained
/// (the writer's final in-flight batch completes outside the measurement),
/// every client-observed read latency, and the number of epochs the writer
/// published.
fn read_write_mix(
    server: &Arc<PaxServer>,
    queries: &Arc<Vec<PreparedQuery>>,
    bench: &Workbench,
    readers: usize,
    stream_updates: bool,
) -> (Duration, Vec<Duration>, u64) {
    let start = Instant::now();
    let readers_done = Arc::new(AtomicBool::new(false));
    let writer = stream_updates.then(|| {
        let server = Arc::clone(server);
        let readers_done = Arc::clone(&readers_done);
        let mut workload = UpdateWorkload::new(&bench.fragmented, bench.node_count, SEED);
        thread::spawn(move || {
            let mut published = 0u64;
            while !readers_done.load(Ordering::Relaxed) {
                let batch = workload.next_batch(OPS_PER_BATCH, FRAGMENTS_PER_BATCH);
                let report = server.apply_updates(&batch).unwrap();
                assert!(report.epoch > published, "every non-empty batch publishes an epoch");
                published = report.epoch;
            }
            published
        })
    });
    let workers: Vec<_> = (0..readers)
        .map(|reader| {
            let server = Arc::clone(server);
            let queries = Arc::clone(queries);
            thread::spawn(move || {
                let mut latencies = Vec::with_capacity(ITERS_PER_READER);
                for i in 0..ITERS_PER_READER {
                    let pick = (reader + i) % queries.len();
                    let issued = Instant::now();
                    let report = server.execute(&queries[pick]).unwrap();
                    latencies.push(issued.elapsed());
                    assert!(report.max_visits_per_site() <= 2);
                    assert!(!report.queries.is_empty());
                }
                latencies
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(readers * ITERS_PER_READER);
    for worker in workers {
        latencies.extend(worker.join().unwrap());
    }
    let readers_wall = start.elapsed();
    readers_done.store(true, Ordering::Relaxed);
    let published = writer.map_or(0, |writer| writer.join().unwrap());
    (readers_wall, latencies, published)
}

fn percentile(sorted: &[Duration], p: usize) -> Duration {
    sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
}

/// Print idle vs under-updates read latency side by side.
fn latency_table(bench: &Workbench) {
    println!(
        "\nexp9: {ITERS_PER_READER} closed-loop reads per reader, {READER_COUNTS:?} readers, \
         writer streams {OPS_PER_BATCH}-op update batches"
    );
    println!(
        "{:<16} {:>8} {:>12} {:>12} {:>12} {:>8}",
        "series", "readers", "reads/s", "p50(us)", "p99(us)", "epochs"
    );
    for &readers in &READER_COUNTS {
        for stream_updates in [false, true] {
            let (server, queries) = warm_server(&bench.fragmented);
            let (wall, mut latencies, published) =
                read_write_mix(&server, &queries, bench, readers, stream_updates);
            latencies.sort();
            let label = if stream_updates { "under-updates" } else { "idle-writer" };
            println!(
                "{:<16} {:>8} {:>12.0} {:>12.1} {:>12.1} {:>8}",
                label,
                readers,
                (readers * ITERS_PER_READER) as f64 / wall.as_secs_f64(),
                percentile(&latencies, 50).as_secs_f64() * 1e6,
                percentile(&latencies, 99).as_secs_f64() * 1e6,
                published,
            );
        }
    }
    println!();
}

fn read_write_mix_bench(c: &mut Criterion) {
    let bench = workbench();
    latency_table(&bench);

    let mut group = c.benchmark_group("exp9_read_write_mix");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for &readers in &READER_COUNTS {
        group.throughput(Throughput::Elements((readers * ITERS_PER_READER) as u64));
        for stream_updates in [false, true] {
            let (server, queries) = warm_server(&bench.fragmented);
            let label = if stream_updates { "reads-under-updates" } else { "reads-idle" };
            group.bench_with_input(BenchmarkId::new(label, readers), &readers, |b, &n| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let (wall, _, _) =
                            read_write_mix(&server, &queries, &bench, n, stream_updates);
                        total += wall;
                    }
                    total
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, read_write_mix_bench);
criterion_main!(benches);

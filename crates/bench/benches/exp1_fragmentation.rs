//! Criterion bench for Experiment 1 (Fig. 9): evaluation time vs. number of
//! fragments/machines, constant cumulative data size.
//!
//! * Fig. 9(a): query Q1 (no qualifiers), PaX3 with and without annotations.
//! * Fig. 9(b): query Q4 (qualifiers + `//`), PaX3-NA vs PaX2-NA.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paxml_bench::{paper_query, run, Series};
use paxml_xmark::ft1;
use std::time::Duration;

const TOTAL_VMB: f64 = 2.0;
const SEED: u64 = 42;

fn fig9a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9a_q1_vs_fragmentation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for fragments in [1usize, 2, 4, 6, 8, 10] {
        let (_, fragmented) = ft1(fragments, TOTAL_VMB, SEED);
        for series in [Series::Pax3Na, Series::Pax3Xa] {
            group.bench_with_input(
                BenchmarkId::new(series.label(), fragments),
                &fragments,
                |b, &k| {
                    b.iter(|| run(series, &fragmented, k, paper_query("Q1")));
                },
            );
        }
    }
    group.finish();
}

fn fig9b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9b_q4_vs_fragmentation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for fragments in [1usize, 2, 4, 6, 8, 10] {
        let (_, fragmented) = ft1(fragments, TOTAL_VMB, SEED);
        for series in [Series::Pax3Na, Series::Pax2Na] {
            group.bench_with_input(
                BenchmarkId::new(series.label(), fragments),
                &fragments,
                |b, &k| {
                    b.iter(|| run(series, &fragmented, k, paper_query("Q4")));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig9a, fig9b);
criterion_main!(benches);

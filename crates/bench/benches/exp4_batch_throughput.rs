//! Experiment 4 (new in this repository, beyond the paper): batch
//! throughput — queries/second vs. batch size over one FT2 deployment.
//!
//! The baseline evaluates the batch one query at a time with
//! [`PaxServer::query_once`] (the classic un-amortized per-query protocol,
//! as a query router without batching would); the contender hands the whole
//! batch to [`PaxServer::execute_batch_text`], which shares site visits so
//! the entire batch costs at most two visits per site. Both series reuse
//! one server session, so the persistent per-site worker pool serves every
//! round and every execution reports its own meters; what the bench
//! isolates is the per-round coordination cost (`2N` rounds vs. `2`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use paxml_core::{server::PaxServer, Algorithm};
use paxml_distsim::Placement;
use paxml_fragment::FragmentedTree;
use paxml_xmark::{ft2, PAPER_QUERIES};
use std::time::Duration;

const SEED: u64 = 42;
const SITES: usize = 10;
const VMB: f64 = 2.0;
const BATCH_SIZES: [usize; 4] = [1, 4, 8, 16];

/// A mixed workload of `n` queries cycling through the paper's query set
/// with per-index variations, so batched queries are not all identical.
fn workload(n: usize) -> Vec<String> {
    let extras = [
        "/sites/site/people/person/name",
        "//person[address/country=\"US\"]/name",
        "//open_auctions/auction/bidder/increase",
        "/sites/site/regions//item[quantity > 5]/name",
    ];
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                PAPER_QUERIES[(i / 2) % PAPER_QUERIES.len()].1.to_string()
            } else {
                extras[(i / 2) % extras.len()].to_string()
            }
        })
        .collect()
}

fn pax2_server(fragmented: &FragmentedTree, sequential: bool) -> PaxServer {
    PaxServer::builder()
        .algorithm(Algorithm::PaX2)
        .placement(Placement::RoundRobin)
        .sites(SITES)
        .sequential(sequential)
        .deploy(fragmented)
        .expect("valid configuration")
}

fn throughput_vs_batch_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp4_batch_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let (_, fragmented) = ft2(VMB, SEED);

    for &size in &BATCH_SIZES {
        let queries = workload(size);
        group.throughput(Throughput::Elements(size as u64));

        let server = pax2_server(&fragmented, false);
        group.bench_with_input(BenchmarkId::new("one-at-a-time", size), &queries, |b, queries| {
            b.iter(|| {
                for query in queries {
                    server.query_once(query).unwrap();
                }
            });
        });

        let server = pax2_server(&fragmented, false);
        group.bench_with_input(BenchmarkId::new("batched", size), &queries, |b, queries| {
            b.iter(|| server.execute_batch_text(queries).unwrap());
        });
    }
    group.finish();
}

/// Nanoseconds one elementary site operation stands for in the deterministic
/// latency model below (equal for both series; only the ratio matters).
const NANOS_PER_OP: u64 = 100;

/// One simulated coordinator↔sites round trip (the 2007 LAN setting).
const RTT: Duration = Duration::from_millis(1);

/// The same comparison under the paper's *perceived latency* metric,
/// computed from the simulator's deterministic cost model instead of host
/// wall-clock: per round, the slowest site's operation count (× a fixed
/// per-op cost) plus one network round trip. Wall-clock cannot measure
/// 10-site parallelism faithfully on hosts with fewer cores than simulated
/// sites (see `ClusterStats::parallel_ops`); the model can, and it is where
/// visit sharing pays decisively — one-at-a-time spends `2N` round trips
/// per batch, the batch engine exactly two.
fn perceived_latency_vs_batch_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp4_batch_perceived_latency_1ms_rtt");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(300));
    let (_, fragmented) = ft2(VMB, SEED);
    let modelled = |parallel_ops: u64, rounds: u32| -> Duration {
        Duration::from_nanos(parallel_ops * NANOS_PER_OP) + RTT * rounds
    };

    for &size in &BATCH_SIZES {
        let queries = workload(size);
        group.throughput(Throughput::Elements(size as u64));

        group.bench_with_input(BenchmarkId::new("one-at-a-time", size), &queries, |b, queries| {
            let server = pax2_server(&fragmented, true);
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    for query in queries {
                        let report = server.query_once(query).unwrap();
                        total += modelled(report.parallel_ops(), report.rounds());
                    }
                }
                total.max(Duration::from_nanos(1))
            });
        });

        group.bench_with_input(BenchmarkId::new("batched", size), &queries, |b, queries| {
            let server = pax2_server(&fragmented, true);
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let report = server.execute_batch_text(queries).unwrap();
                    total += modelled(report.parallel_ops(), report.rounds());
                }
                total.max(Duration::from_nanos(1))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, throughput_vs_batch_size, perceived_latency_vs_batch_size);
criterion_main!(benches);

//! Criterion bench for Experiment 3 (Fig. 11): **total** computation time
//! (sum of per-site busy time) vs. cumulative data size.
//!
//! Criterion normally measures wall-clock of the benchmarked closure; here
//! `iter_custom` feeds it the summed per-site busy time reported by the
//! simulator, which is the quantity Fig. 11 plots.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paxml_bench::{paper_query, run, Series};
use paxml_xmark::ft2;
use std::time::Duration;

const SEED: u64 = 42;
const SITES: usize = 10;
const SIZES: [f64; 2] = [2.0, 4.0];

fn bench_total(c: &mut Criterion, name: &str, query_name: &str, series_list: &[Series]) {
    let mut group = c.benchmark_group(name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for &vmb in &SIZES {
        let (_, fragmented) = ft2(vmb, SEED);
        for &series in series_list {
            group.bench_with_input(
                BenchmarkId::new(series.label(), format!("{vmb}vMB")),
                &vmb,
                |b, _| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let report = run(series, &fragmented, SITES, paper_query(query_name));
                            total += report.total_computation_time();
                        }
                        total.max(Duration::from_nanos(1))
                    });
                },
            );
        }
    }
    group.finish();
}

fn fig11a(c: &mut Criterion) {
    bench_total(c, "fig11a_q1_total_cost", "Q1", &[Series::Pax3Na, Series::Pax3Xa]);
}
fn fig11b(c: &mut Criterion) {
    bench_total(c, "fig11b_q2_total_cost", "Q2", &[Series::Pax3Na, Series::Pax3Xa]);
}
fn fig11c(c: &mut Criterion) {
    bench_total(c, "fig11c_q3_total_cost", "Q3", &[Series::Pax3Na, Series::Pax2Na, Series::Pax2Xa]);
}
fn fig11d(c: &mut Criterion) {
    bench_total(c, "fig11d_q4_total_cost", "Q4", &[Series::Pax3Na, Series::Pax2Na]);
}

criterion_group!(benches, fig11a, fig11b, fig11c, fig11d);
criterion_main!(benches);

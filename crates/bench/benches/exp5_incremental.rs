//! Experiment 5 (new in this repository, beyond the paper): incremental
//! re-evaluation under fragment updates vs. from-scratch batch
//! re-evaluation, both through the [`PaxServer`] session API.
//!
//! Both series start from the same FT1 deployment and replay the same
//! update stream. The **from-scratch** baseline keeps no prepared queries:
//! its `apply_updates` call is a bare write round (one visit to each dirty
//! site, nothing recomputed) followed by a full `query_once` re-evaluation
//! — paying the `O(|Q|·|FT|)` traffic and a visit to *every* relevant
//! site. The **incremental** contender prepares the query once: the update
//! round then refreshes the prepared query's residual vectors in the same
//! visit it applies the ops, `evalFT` re-unifies only the dirty cone, and
//! clean sites are never visited, so cost scales with |dirty fragments|
//! instead of the data size (re-reading the answers afterwards is free —
//! served from the cache with zero visits). Before the timing runs, a
//! traffic table prints the per-re-evaluation network bytes of both series
//! for each dirty count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paxml_core::{server::PaxServer, Algorithm};
use paxml_distsim::Placement;
use paxml_fragment::FragmentedTree;
use paxml_xmark::{ft1, UpdateWorkload};
use std::time::Duration;

const SEED: u64 = 42;
const FRAGMENTS: usize = 16;
const VMB: f64 = 2.0;
const QUERY: &str =
    "/sites/site/people/person[profile/age > 20 and address/country=\"US\"]/creditcard";
const DIRTY_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn pax2_server(fragmented: &FragmentedTree) -> PaxServer {
    PaxServer::builder()
        .algorithm(Algorithm::PaX2)
        .placement(Placement::RoundRobin)
        .sites(FRAGMENTS)
        .deploy(fragmented)
        .expect("valid configuration")
}

/// Print per-re-evaluation traffic for both series — the "traffic scales
/// with |dirty|, not data size" evidence the experiment is about.
fn traffic_table() {
    println!("\nexp5: network bytes per re-evaluation (query Q3, FT1 x{FRAGMENTS}, {VMB} vMB)");
    println!("{:>8} {:>16} {:>16} {:>8}", "dirty", "incremental", "from-scratch", "ratio");
    for &dirty in &DIRTY_COUNTS {
        let (tree, fragmented) = ft1(FRAGMENTS, VMB, SEED);
        let nodes = tree.all_nodes().count();

        // Incremental: the prepared query's cache rides along with every
        // update round; re-reading the answers afterwards costs no visit.
        let server = pax2_server(&fragmented);
        let q = server.prepare(QUERY).unwrap();
        server.execute(&q).unwrap();
        let mut workload = UpdateWorkload::new(&fragmented, nodes, SEED ^ dirty as u64);
        let mut incremental = 0u64;
        let mut rounds = 0u64;
        for _ in 0..5 {
            let batch = workload.next_batch(dirty * 2, dirty);
            if batch.is_empty() {
                continue;
            }
            let report = server.apply_updates(&batch).unwrap();
            assert_eq!(report.clean_site_visits(), 0);
            let reread = server.execute(&q).unwrap();
            assert!(reread.from_cache);
            incremental += report.network_bytes() + reread.network_bytes();
            rounds += 1;
        }
        let incremental = incremental / rounds.max(1);

        // From-scratch: no prepared queries — updates are a bare write
        // round, then the full protocol re-runs.
        let scratch_server = pax2_server(&fragmented);
        let mut scratch_workload = UpdateWorkload::new(&fragmented, nodes, SEED ^ dirty as u64);
        let mut scratch = 0u64;
        let mut scratch_rounds = 0u64;
        for _ in 0..5 {
            let batch = scratch_workload.next_batch(dirty * 2, dirty);
            if batch.is_empty() {
                continue;
            }
            scratch_server.apply_updates(&batch).unwrap();
            scratch += scratch_server.query_once(QUERY).unwrap().network_bytes();
            scratch_rounds += 1;
        }
        let scratch = scratch / scratch_rounds.max(1);
        println!(
            "{:>8} {:>16} {:>16} {:>7.1}x",
            dirty,
            incremental,
            scratch,
            scratch as f64 / incremental.max(1) as f64
        );
    }
    println!();
}

fn reevaluation_latency(c: &mut Criterion) {
    traffic_table();

    let mut group = c.benchmark_group("exp5_incremental");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for &dirty in &DIRTY_COUNTS {
        let (tree, fragmented) = ft1(FRAGMENTS, VMB, SEED);
        let nodes = tree.all_nodes().count();

        let server = pax2_server(&fragmented);
        let q = server.prepare(QUERY).unwrap();
        server.execute(&q).unwrap();
        let mut workload = UpdateWorkload::new(&fragmented, nodes, SEED);
        group.bench_with_input(BenchmarkId::new("incremental", dirty), &dirty, |b, &dirty| {
            b.iter(|| {
                let batch = workload.next_batch(dirty * 2, dirty);
                server.apply_updates(&batch).unwrap();
                server.execute(&q).unwrap()
            });
        });

        let scratch_server = pax2_server(&fragmented);
        let mut workload = UpdateWorkload::new(&fragmented, nodes, SEED);
        group.bench_with_input(BenchmarkId::new("from-scratch", dirty), &dirty, |b, &dirty| {
            b.iter(|| {
                let batch = workload.next_batch(dirty * 2, dirty);
                scratch_server.apply_updates(&batch).unwrap();
                scratch_server.query_once(QUERY).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, reevaluation_latency);
criterion_main!(benches);

//! Experiment 5 (new in this repository, beyond the paper): incremental
//! re-evaluation under fragment updates vs. from-scratch batch
//! re-evaluation.
//!
//! Both series start from the same FT1 deployment and replay the same
//! update stream. The **from-scratch** baseline applies each update batch
//! (one visit to each dirty site, no recomputation) and then re-runs
//! `pax2::evaluate` — paying the full `O(|Q|·|FT|)` traffic and a visit to
//! *every* relevant site. The **incremental** contender is an
//! [`IncrementalEngine`]: the update visit recomputes the dirty fragments'
//! vectors in place, `evalFT` re-unifies only the dirty cone, and clean
//! sites are never visited, so cost scales with |dirty fragments| instead of
//! the data size. Before the timing runs, a traffic table prints the
//! per-re-evaluation network bytes of both series for each dirty count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paxml_core::protocol::{update_task, FragmentUpdate, InitVector, MsgUpdate};
use paxml_core::{incremental::IncrementalEngine, pax2, Deployment, EvalOptions};
use paxml_distsim::{Placement, SiteId};
use paxml_fragment::{FragmentId, UpdateOp};
use paxml_xmark::{ft1, UpdateWorkload};
use paxml_xpath::{compile_text, CompiledQuery};
use std::collections::BTreeMap;
use std::time::Duration;

const SEED: u64 = 42;
const FRAGMENTS: usize = 16;
const VMB: f64 = 2.0;
const QUERY: &str =
    "/sites/site/people/person[profile/age > 20 and address/country=\"US\"]/creditcard";
const DIRTY_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Apply an update batch to a bare deployment (no recomputation): the write
/// path a non-incremental store pays anyway.
fn apply_raw(deployment: &mut Deployment, query: &CompiledQuery, batch: &[(FragmentId, UpdateOp)]) {
    let mut ops_by_fragment: BTreeMap<FragmentId, Vec<UpdateOp>> = BTreeMap::new();
    for (fragment, op) in batch {
        ops_by_fragment.entry(*fragment).or_default().push(op.clone());
    }
    let mut requests: BTreeMap<SiteId, MsgUpdate> = BTreeMap::new();
    for (&site, fragments) in &deployment.group_by_site(ops_by_fragment.keys().copied()) {
        let mut per_fragment = BTreeMap::new();
        for &fragment in fragments {
            per_fragment.insert(
                fragment,
                FragmentUpdate {
                    ops: ops_by_fragment[&fragment].clone(),
                    init: InitVector::Unknown,
                    root_is_context: false,
                    recompute: false,
                },
            );
        }
        requests.insert(site, MsgUpdate { query: query.clone(), fragments: per_fragment });
    }
    deployment.cluster.round(requests, update_task);
}

/// Print per-re-evaluation traffic for both series — the "traffic scales
/// with |dirty|, not data size" evidence the experiment is about.
fn traffic_table() {
    println!("\nexp5: network bytes per re-evaluation (query Q3, FT1 x{FRAGMENTS}, {VMB} vMB)");
    println!("{:>8} {:>16} {:>16} {:>8}", "dirty", "incremental", "from-scratch", "ratio");
    for &dirty in &DIRTY_COUNTS {
        let (tree, fragmented) = ft1(FRAGMENTS, VMB, SEED);
        let nodes = tree.all_nodes().count();
        let query = compile_text(QUERY).unwrap();

        let deployment = Deployment::new(&fragmented, FRAGMENTS, Placement::RoundRobin);
        let mut engine =
            IncrementalEngine::new(deployment, QUERY, &EvalOptions::default()).unwrap();
        let mut workload = UpdateWorkload::new(&fragmented, nodes, SEED ^ dirty as u64);
        let mut incremental = 0u64;
        let mut rounds = 0u64;
        for _ in 0..5 {
            let batch = workload.next_batch(dirty * 2, dirty);
            if batch.is_empty() {
                continue;
            }
            let report = engine.apply_updates(&batch).unwrap();
            assert_eq!(report.clean_site_visits(), 0);
            incremental += report.network_bytes;
            rounds += 1;
        }
        let incremental = incremental / rounds.max(1);

        let mut scratch_deployment = Deployment::new(&fragmented, FRAGMENTS, Placement::RoundRobin);
        let mut scratch_workload = UpdateWorkload::new(&fragmented, nodes, SEED ^ dirty as u64);
        let mut scratch = 0u64;
        let mut scratch_rounds = 0u64;
        for _ in 0..5 {
            let batch = scratch_workload.next_batch(dirty * 2, dirty);
            if batch.is_empty() {
                continue;
            }
            apply_raw(&mut scratch_deployment, &query, &batch);
            let before = scratch_deployment.cluster.stats.total_bytes();
            pax2::evaluate(&mut scratch_deployment, QUERY, &EvalOptions::default()).unwrap();
            scratch += scratch_deployment.cluster.stats.total_bytes() - before;
            scratch_rounds += 1;
        }
        let scratch = scratch / scratch_rounds.max(1);
        println!(
            "{:>8} {:>16} {:>16} {:>7.1}x",
            dirty,
            incremental,
            scratch,
            scratch as f64 / incremental.max(1) as f64
        );
    }
    println!();
}

fn reevaluation_latency(c: &mut Criterion) {
    traffic_table();

    let mut group = c.benchmark_group("exp5_incremental");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for &dirty in &DIRTY_COUNTS {
        let (tree, fragmented) = ft1(FRAGMENTS, VMB, SEED);
        let nodes = tree.all_nodes().count();

        let deployment = Deployment::new(&fragmented, FRAGMENTS, Placement::RoundRobin);
        let mut engine =
            IncrementalEngine::new(deployment, QUERY, &EvalOptions::default()).unwrap();
        let mut workload = UpdateWorkload::new(&fragmented, nodes, SEED);
        group.bench_with_input(BenchmarkId::new("incremental", dirty), &dirty, |b, &dirty| {
            b.iter(|| {
                let batch = workload.next_batch(dirty * 2, dirty);
                engine.apply_updates(&batch).unwrap()
            });
        });

        let query = compile_text(QUERY).unwrap();
        let mut deployment = Deployment::new(&fragmented, FRAGMENTS, Placement::RoundRobin);
        let mut workload = UpdateWorkload::new(&fragmented, nodes, SEED);
        group.bench_with_input(BenchmarkId::new("from-scratch", dirty), &dirty, |b, &dirty| {
            b.iter(|| {
                let batch = workload.next_batch(dirty * 2, dirty);
                apply_raw(&mut deployment, &query, &batch);
                pax2::evaluate(&mut deployment, QUERY, &EvalOptions::default()).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, reevaluation_latency);
criterion_main!(benches);

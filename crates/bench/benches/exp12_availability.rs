//! Experiment 12 (new in this repository, beyond the paper): availability
//! under a deterministic kill-and-revive schedule.
//!
//! The paper assumes sites never fail. This experiment measures what the
//! replicated deployment buys when they do: a `replication = 2` PaX2
//! server runs a closed-loop read/update mix while a scripted [`FaultPlan`]
//! kills one site for a window of rounds, revives it, then kills a
//! *different* site — the worst single-failure weather a 2-replica
//! placement must absorb. The contract under test:
//!
//! * **zero client-visible errors** — every read and every update batch
//!   must complete (the failover path retries, quarantines the victim and
//!   re-routes to the surviving replica);
//! * **bounded degradation** — the run's throughput and p50/p99 operation
//!   latencies are printed next to a fault-free run of the same workload,
//!   so the cost of a kill window (one retry backoff plus re-routing)
//!   is a number, not a hope.
//!
//! A report table prints both profiles before the timed Criterion groups
//! run; the timed groups then pin the wall-clock of the whole workload in
//! calm and chaotic weather.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use paxml_core::{server::PaxServer, Algorithm, RetryPolicy};
use paxml_distsim::{FaultEvent, FaultKind, FaultPlan, Placement, SiteId};
use paxml_xmark::{ft1, UpdateWorkload, PAPER_QUERIES};
use std::time::{Duration, Instant};

const SEED: u64 = 42;
const SITES: usize = 3;
const FRAGMENTS: usize = 6;
const VMB: f64 = 0.05;
/// Closed-loop operations per run: reads with one update batch every
/// eighth operation.
const OPS: usize = 48;

/// The schedule: S1 dies early and revives, then — much later — S2 dies
/// and revives. The gap is deliberate: between the windows the health
/// tracker must re-probe and readmit S1 and an update's repair pass must
/// re-ship its stale copies, so that when S2 goes down every fragment
/// still has a live, current replica.
fn kill_and_revive_schedule() -> FaultPlan {
    FaultPlan::scripted(vec![
        FaultEvent { site: SiteId(1), from_round: 6, to_round: 14, kind: FaultKind::Kill },
        FaultEvent { site: SiteId(2), from_round: 60, to_round: 68, kind: FaultKind::Kill },
    ])
}

/// One closed-loop run; every operation must succeed. Returns the total
/// wall clock and each operation's latency.
fn availability_run(plan: Option<FaultPlan>) -> (Duration, Vec<Duration>) {
    let (tree, fragmented) = ft1(FRAGMENTS, VMB, SEED);
    let server = PaxServer::builder()
        .algorithm(Algorithm::PaX2)
        .sites(SITES)
        .placement(Placement::RoundRobin)
        .replication(2)
        // In-process probes are free, so re-check quarantined sites almost
        // immediately — a revived site rejoins within one operation.
        .retry_policy(RetryPolicy {
            probe_cooldown: Duration::from_millis(1),
            ..RetryPolicy::default()
        })
        .deploy(&fragmented)
        .expect("deploy the replicated server");
    if let Some(plan) = plan {
        server.deployment().transport().set_fault_plan(Some(plan));
    }
    let queries: Vec<&str> = PAPER_QUERIES.iter().map(|(_, q)| *q).collect();
    let mut workload = UpdateWorkload::new(&fragmented, tree.all_nodes().count(), 7);
    let mut latencies = Vec::with_capacity(OPS);
    let started = Instant::now();
    for i in 0..OPS {
        let issued = Instant::now();
        if i % 8 == 7 {
            server
                .apply_updates(&workload.next_batch(3, 2))
                .expect("updates must survive the kill schedule");
        } else {
            // query_once: uncached, so every read pays its site rounds and
            // the fault clock keeps ticking through the schedule.
            server
                .query_once(queries[i % queries.len()])
                .expect("reads must survive the kill schedule");
        }
        latencies.push(issued.elapsed());
    }
    (started.elapsed(), latencies)
}

fn percentile(sorted: &[Duration], p: usize) -> Duration {
    sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
}

/// Print calm vs chaotic throughput and latency side by side.
fn availability_table() {
    println!(
        "\nexp12: {OPS} closed-loop ops (7 reads : 1 update batch), FT1×{FRAGMENTS} on \
         {SITES} sites ×2 replicas, kill S1@[6,14] then S2@[60,68] (round ticks)"
    );
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>12}",
        "series", "ops/s", "p50(us)", "p99(us)", "max(us)"
    );
    for (label, plan) in [("calm", None), ("kill-revive", Some(kill_and_revive_schedule()))] {
        let (wall, mut latencies) = availability_run(plan);
        latencies.sort();
        println!(
            "{:<12} {:>10.0} {:>12.1} {:>12.1} {:>12.1}",
            label,
            OPS as f64 / wall.as_secs_f64(),
            percentile(&latencies, 50).as_secs_f64() * 1e6,
            percentile(&latencies, 99).as_secs_f64() * 1e6,
            latencies.last().expect("latencies recorded").as_secs_f64() * 1e6,
        );
    }
    println!();
}

fn availability_bench(c: &mut Criterion) {
    availability_table();

    let mut group = c.benchmark_group("exp12_availability");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(OPS as u64));
    group.bench_function("workload-calm", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += availability_run(None).0;
            }
            total
        });
    });
    group.bench_function("workload-kill-revive", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += availability_run(Some(kill_and_revive_schedule())).0;
            }
            total
        });
    });
    group.finish();
}

criterion_group!(benches, availability_bench);
criterion_main!(benches);

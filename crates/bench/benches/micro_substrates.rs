//! Micro-benchmarks of the substrates: XML parsing, query compilation,
//! centralized evaluation, the bottom-up qualifier pass and the naive
//! baseline. Useful for tracking regressions that the figure-level benches
//! would only show indirectly.

use criterion::{criterion_group, criterion_main, Criterion};
use paxml_bench::{paper_query, run, Series};
use paxml_xmark::{clientele_document, ft1, XmarkConfig, XmarkGenerator};
use paxml_xpath::{centralized, compile_text};
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
}

fn xml_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_xml");
    configure(&mut group);
    let tree =
        XmarkGenerator::new(XmarkConfig { vmb_per_site: 1.0, ..Default::default() }).generate();
    let text = paxml_xml::to_string(&tree);
    group.bench_function("serialize_1vmb", |b| b.iter(|| paxml_xml::to_string(&tree)));
    group.bench_function("parse_1vmb", |b| b.iter(|| paxml_xml::parse(&text).unwrap()));
    group.finish();
}

fn query_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_xpath");
    configure(&mut group);
    group.bench_function("compile_q3", |b| b.iter(|| compile_text(paper_query("Q3")).unwrap()));
    let clientele = clientele_document();
    group.bench_function("centralized_clientele_q", |b| {
        b.iter(|| {
            centralized::evaluate(
                &clientele,
                "client[country/text()='US']/broker[market/name/text()='NASDAQ']/name",
            )
            .unwrap()
        })
    });
    let tree =
        XmarkGenerator::new(XmarkConfig { vmb_per_site: 1.0, ..Default::default() }).generate();
    group.bench_function("centralized_q3_1vmb", |b| {
        b.iter(|| centralized::evaluate(&tree, paper_query("Q3")).unwrap())
    });
    group.finish();
}

fn distributed_single_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_distributed");
    configure(&mut group);
    let (_, fragmented) = ft1(4, 1.0, 7);
    group.bench_function("pax2_q3_4_fragments", |b| {
        b.iter(|| run(Series::Pax2Na, &fragmented, 4, paper_query("Q3")))
    });
    group.bench_function("naive_q3_4_fragments", |b| {
        b.iter(|| run(Series::Naive, &fragmented, 4, paper_query("Q3")))
    });
    group.finish();
}

criterion_group!(benches, xml_parse, query_compile, distributed_single_query);
criterion_main!(benches);

//! Experiment 11 (new in this repository, beyond the paper): shared
//! compilation across a *set* of prepared queries.
//!
//! A workload of 120 overlapping widened-X queries (drawn from the shared
//! grammar generator over a deliberately small vocabulary, plus textual
//! duplicates) is prepared two ways on fresh servers:
//!
//! * **independent** — `120 × PaxServer::prepare`: every text is parsed,
//!   normalized and compiled on its own (the whole-query `by_text` cache
//!   only helps for byte-identical repeats);
//! * **shared** — one `PaxServer::prepare_set`: textual duplicates of one
//!   normal form share a single compiled query outright, and distinct
//!   queries share compiled qualifier subtrees through the hash-consing
//!   [`CompileCache`] pool.
//!
//! Before the timing runs, a report table prints the sharing directly:
//! pool entries vs the sum of per-query arena sizes, and the subtree
//! hit/miss counts of the set preparation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use paxml_core::{server::PaxServer, Algorithm};
use paxml_distsim::Placement;
use paxml_fragment::FragmentedTree;
use paxml_xmark::{ft1, QueryGen, QueryGenConfig};
use std::time::Duration;

const SEED: u64 = 42;
const SITES: usize = 4;
const DISTINCT: usize = 40;
const COPIES: usize = 3; // 40 distinct texts × 3 spellings = 120 queries

/// The overlapping workload: a small vocabulary keeps the generated
/// qualifier subtrees heavily shared, and each text is repeated with
/// whitespace variants so whole-query sharing fires too.
fn workload() -> Vec<String> {
    let config = QueryGenConfig::with_vocabulary(
        &["people", "person", "name"],
        &["x", "10"],
        &["id", "age"],
    );
    let mut gen = QueryGen::new(config, SEED);
    let mut texts = Vec::with_capacity(DISTINCT * COPIES);
    for _ in 0..DISTINCT {
        let text = gen.query_text();
        texts.push(text.clone());
        texts.push(format!(" {text}"));
        texts.push(format!("{text} "));
    }
    texts
}

fn server(fragmented: &FragmentedTree) -> PaxServer {
    PaxServer::builder()
        .algorithm(Algorithm::PaX2)
        .placement(Placement::RoundRobin)
        .sites(SITES)
        .deploy(fragmented)
        .expect("valid configuration")
}

/// Print what the set preparation shares, in the server's own meters.
fn sharing_table(fragmented: &FragmentedTree, texts: &[String]) {
    let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();

    let independent = server(fragmented);
    let t0 = std::time::Instant::now();
    for text in &refs {
        independent.prepare(text).unwrap();
    }
    let independent_elapsed = t0.elapsed();

    let shared = server(fragmented);
    let (queries, stats) = shared.prepare_set(&refs).unwrap();
    assert_eq!(queries.len(), refs.len());

    println!("\nexp11: {} texts, {} distinct normal forms", stats.queries, stats.distinct_queries);
    println!("{:>24} {:>12} {:>12}", "", "independent", "prepare_set");
    println!(
        "{:>24} {:>12} {:>12}",
        "arena entries", stats.arena_entries_independent, stats.arena_entries
    );
    println!("{:>24} {:>12?} {:>12?}", "prepare time", independent_elapsed, stats.elapsed);
    println!(
        "{:>24} {:>12} {:>12}",
        "subtree misses / hits", stats.subtree_misses, stats.subtree_hits
    );
    assert!(
        stats.arena_entries < stats.arena_entries_independent,
        "the shared pool must be smaller than the sum of per-query arenas \
         ({} vs {})",
        stats.arena_entries,
        stats.arena_entries_independent
    );
    println!();
}

fn prepare_set_vs_independent(c: &mut Criterion) {
    let (_, fragmented) = ft1(3, 0.01, SEED);
    let texts = workload();
    sharing_table(&fragmented, &texts);
    let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();

    let mut group = c.benchmark_group("exp11_prepared_set");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(refs.len() as u64));

    group.bench_with_input(BenchmarkId::new("independent", refs.len()), &refs, |b, refs| {
        b.iter(|| {
            // A fresh server each round: by_text must start cold.
            let s = server(&fragmented);
            for text in refs.iter() {
                s.prepare(text).unwrap();
            }
        });
    });

    group.bench_with_input(BenchmarkId::new("prepare-set", refs.len()), &refs, |b, refs| {
        b.iter(|| {
            let s = server(&fragmented);
            s.prepare_set(refs).unwrap();
        });
    });

    group.finish();
}

criterion_group!(benches, prepare_set_vs_independent);
criterion_main!(benches);

//! Experiment 6 (new in this repository, beyond the paper): prepared-query
//! reuse — the "fixed query, changing data" regime a long-lived
//! [`PaxServer`] session is built for.
//!
//! The same query is executed `N` times over one FT2 deployment, two ways:
//!
//! * **text path** — `N × PaxServer::query_once`: every execution re-lexes,
//!   re-parses, re-normalizes and re-compiles the query text, then runs the
//!   full two-visit PaX2 protocol (this is exactly what the deprecated
//!   per-query free functions did per call);
//! * **prepared path** — one `PaxServer::prepare` plus `N ×
//!   PaxServer::execute`: the query is compiled once; the first execution
//!   snapshots the residual-vector cache (one visit per relevant site) and
//!   every further execution is served from it with **zero visits**.
//!
//! Before the timing runs, a report table prints the amortization directly:
//! compile work happens once instead of `N` times, and the visit/byte
//! meters of executions 2…N drop to zero.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use paxml_core::{server::PaxServer, Algorithm};
use paxml_distsim::Placement;
use paxml_fragment::FragmentedTree;
use paxml_xmark::ft2;
use std::time::Duration;

const SEED: u64 = 42;
const SITES: usize = 10;
const VMB: f64 = 1.5;
const QUERY: &str =
    "/sites/site/people/person[profile/age > 20 and address/country=\"US\"]/creditcard";
const REPEATS: [usize; 3] = [4, 16, 64];

fn pax2_server(fragmented: &FragmentedTree) -> PaxServer {
    PaxServer::builder()
        .algorithm(Algorithm::PaX2)
        .placement(Placement::RoundRobin)
        .sites(SITES)
        .deploy(fragmented)
        .expect("valid configuration")
}

/// Print the per-series totals for one repeat count — the compile-once /
/// visit-once amortization, stated in the simulator's own meters.
fn amortization_table() {
    let (_, fragmented) = ft2(VMB, SEED);
    println!("\nexp6: {QUERY}");
    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12}",
        "N", "text bytes", "prepared bytes", "text visits", "prep visits"
    );
    for &n in &REPEATS {
        let text_server = pax2_server(&fragmented);
        let mut text_bytes = 0u64;
        let mut text_visits = 0u32;
        for _ in 0..n {
            let report = text_server.query_once(QUERY).unwrap();
            text_bytes += report.network_bytes();
            text_visits += report.max_visits_per_site();
        }

        let prepared_server = pax2_server(&fragmented);
        let q = prepared_server.prepare(QUERY).unwrap();
        let mut prepared_bytes = 0u64;
        let mut prepared_visits = 0u32;
        for i in 0..n {
            let report = prepared_server.execute(&q).unwrap();
            prepared_bytes += report.network_bytes();
            prepared_visits += report.max_visits_per_site();
            assert_eq!(report.from_cache, i > 0, "only the first execution visits sites");
        }
        println!(
            "{:>8} {:>14} {:>14} {:>12} {:>12}",
            n, text_bytes, prepared_bytes, text_visits, prepared_visits
        );
    }
    println!();
}

fn prepared_vs_text(c: &mut Criterion) {
    amortization_table();

    let mut group = c.benchmark_group("exp6_prepared_reuse");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let (_, fragmented) = ft2(VMB, SEED);

    for &n in &REPEATS {
        group.throughput(Throughput::Elements(n as u64));

        let server = pax2_server(&fragmented);
        group.bench_with_input(BenchmarkId::new("text-path", n), &n, |b, &n| {
            b.iter(|| {
                for _ in 0..n {
                    server.query_once(QUERY).unwrap();
                }
            });
        });

        let server = pax2_server(&fragmented);
        let q = server.prepare(QUERY).unwrap();
        server.execute(&q).unwrap(); // populate the cache once, outside the loop
        group.bench_with_input(BenchmarkId::new("prepared", n), &n, |b, &n| {
            b.iter(|| {
                for _ in 0..n {
                    server.execute(&q).unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, prepared_vs_text);
criterion_main!(benches);

//! Experiment 8 (new in this repository, beyond the paper): vector-kernel
//! node throughput — the two-tier `CompactVector`/`FormulaArena` kernel
//! against the legacy one-`BoolExpr`-per-entry representation.
//!
//! Two series per group:
//!
//! * **constant path** — the bottom-up qualifier pass over an unfragmented
//!   XMark tree. Every vector entry is a known truth value, so the new
//!   kernel stays in packed bits (word-wise child folds, zero allocations
//!   per entry) while the legacy kernel allocates a `Vec<BoolExpr>` per
//!   node and clones entries through every fold.
//! * **symbolic path** — the same pass over a tree whose leaves are
//!   replaced by virtual-node stand-ins (fresh variables), so residual
//!   formulas flow through the folds. The new kernel combines interned
//!   `ExprId`s; the legacy kernel deep-clones formula subtrees through
//!   `or_all`/`and_all`.
//!
//! The legacy kernel is reimplemented here, verbatim from the pre-arena
//! `eval.rs`, operating on the still-available `FormulaVector`/`BoolExpr`
//! types — so the comparison measures representations, not drift.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use paxml_boolex::{BoolExpr, FormulaVector};
use paxml_xmark::{generate, XmarkConfig};
use paxml_xml::{NodeId, XmlTree};
use paxml_xpath::eval::{qualifier_pass, QualVectors};
use paxml_xpath::{compile_text, CompiledQuery, QAxis, QEntry};
use std::time::Duration;

const SEED: u64 = 42;
const QUERY: &str =
    "/sites/site/people/person[profile/age > 20 and address/country=\"US\"]/creditcard";

/// Variable type used by both kernels in this bench.
type Var = u32;

// ---------------------------------------------------------------------------
// The legacy kernel: the pre-arena qualifier pass, copied unchanged.
// ---------------------------------------------------------------------------

fn legacy_eval_qentry(
    tree: &XmlTree,
    v: NodeId,
    entry: &QEntry,
    qv_so_far: &FormulaVector<Var>,
    child_any_qv: &FormulaVector<Var>,
    child_any_qdv: &FormulaVector<Var>,
) -> BoolExpr<Var> {
    match entry {
        QEntry::LabelTest(label) => BoolExpr::constant(tree.label(v) == Some(label.as_str())),
        QEntry::ElementTest => BoolExpr::constant(tree.is_element(v)),
        QEntry::TextTest(s) => BoolExpr::constant(tree.text_value(v) == Some(s.as_str())),
        QEntry::ValTest(op, n) => {
            let holds = tree
                .text_value(v)
                .and_then(|t| {
                    let t = t.trim();
                    let t = t.strip_prefix('$').unwrap_or(t);
                    t.parse::<f64>().ok()
                })
                .map(|value| op.apply(value, *n))
                .unwrap_or(false);
            BoolExpr::constant(holds)
        }
        QEntry::AttrTest(a) => BoolExpr::constant(tree.attribute(v, a).is_some()),
        QEntry::AttrValueTest(a, s) => BoolExpr::constant(tree.attribute(v, a) == Some(s.as_str())),
        QEntry::AttrCmpTest(a, op, n) => {
            let holds = tree
                .attribute(v, a)
                .and_then(|t| t.trim().parse::<f64>().ok())
                .map(|value| op.apply(value, *n))
                .unwrap_or(false);
            BoolExpr::constant(holds)
        }
        // The legacy kernel predates positional predicates; this bench's
        // query has none, so the positional filters are always absent.
        QEntry::Step { test, quals, next, next_pos } => {
            assert!(next_pos.is_none(), "the bench query carries no positional predicate");
            let mut conjuncts = vec![qv_so_far[*test].clone()];
            for q in quals {
                conjuncts.push(qv_so_far[*q].clone());
            }
            match next {
                None => {}
                Some((QAxis::Child, e)) => conjuncts.push(child_any_qv[*e].clone()),
                Some((QAxis::Descendant, e)) => conjuncts.push(child_any_qdv[*e].clone()),
            }
            BoolExpr::and_all(conjuncts)
        }
        QEntry::Exists { axis, entry, pos } => {
            assert!(pos.is_none(), "the bench query carries no positional predicate");
            match axis {
                QAxis::Child => child_any_qv[*entry].clone(),
                QAxis::Descendant => child_any_qdv[*entry].clone(),
            }
        }
        QEntry::Not(e) => BoolExpr::not(qv_so_far[*e].clone()),
        QEntry::And(es) => BoolExpr::and_all(es.iter().map(|e| qv_so_far[*e].clone())),
        QEntry::Or(es) => BoolExpr::or_all(es.iter().map(|e| qv_so_far[*e].clone())),
    }
}

/// The legacy bottom-up pass: one `FormulaVector` (a `Vec<BoolExpr>`) per
/// node, entry-wise child folds with per-entry clones.
fn legacy_qualifier_pass(
    tree: &XmlTree,
    query: &CompiledQuery,
    virtual_vector: impl Fn(NodeId, usize, bool) -> BoolExpr<Var>,
) -> (FormulaVector<Var>, FormulaVector<Var>) {
    let root = tree.root();
    let qlen = query.qvect_len();
    let mut node_qv: Vec<Option<FormulaVector<Var>>> = vec![None; tree.node_count()];
    let mut node_qdv: Vec<Option<FormulaVector<Var>>> = vec![None; tree.node_count()];
    for v in tree.post_order(root) {
        if tree.is_virtual(v) {
            node_qv[v.index()] = Some(FormulaVector::from_entries(
                (0..qlen).map(|i| virtual_vector(v, i, false)).collect(),
            ));
            node_qdv[v.index()] = Some(FormulaVector::from_entries(
                (0..qlen).map(|i| virtual_vector(v, i, true)).collect(),
            ));
            continue;
        }
        let mut child_any_qv: FormulaVector<Var> = FormulaVector::all_false(qlen);
        let mut child_any_qdv: FormulaVector<Var> = FormulaVector::all_false(qlen);
        for c in tree.children(v) {
            let cqv = node_qv[c.index()].as_ref().expect("post-order");
            let cqdv = node_qdv[c.index()].as_ref().expect("post-order");
            for i in 0..qlen {
                child_any_qv.set(i, BoolExpr::or(child_any_qv[i].clone(), cqv[i].clone()));
                child_any_qdv.set(i, BoolExpr::or(child_any_qdv[i].clone(), cqdv[i].clone()));
            }
        }
        let mut qv: FormulaVector<Var> = FormulaVector::all_false(qlen);
        for (i, entry) in query.qvect.iter().enumerate() {
            let value = legacy_eval_qentry(tree, v, entry, &qv, &child_any_qv, &child_any_qdv);
            qv.set(i, value);
        }
        let mut qdv: FormulaVector<Var> = FormulaVector::all_false(qlen);
        for i in 0..qlen {
            qdv.set(i, BoolExpr::or(qv[i].clone(), child_any_qdv[i].clone()));
        }
        node_qv[v.index()] = Some(qv);
        node_qdv[v.index()] = Some(qdv);
    }
    (node_qv[root.index()].clone().unwrap(), node_qdv[root.index()].clone().unwrap())
}

// ---------------------------------------------------------------------------
// Workloads.
// ---------------------------------------------------------------------------

fn xmark_tree() -> XmlTree {
    generate(XmarkConfig { site_count: 1, vmb_per_site: 1.0, seed: SEED, ..Default::default() })
}

fn bench_constant_path(c: &mut Criterion) {
    let tree = xmark_tree();
    let query = compile_text(QUERY).unwrap();
    let nodes = tree.node_count() as u64;

    let mut group = c.benchmark_group("exp8_vector_kernel_constant_path");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(nodes));

    group.bench_with_input(BenchmarkId::new("new", nodes), &tree, |b, tree| {
        b.iter(|| {
            qualifier_pass::<Var>(tree, tree.root(), &query, |_| {
                unreachable!("no virtual nodes on the constant path")
            })
        });
    });
    group.bench_with_input(BenchmarkId::new("legacy", nodes), &tree, |b, tree| {
        b.iter(|| legacy_qualifier_pass(tree, &query, |_, _, _| unreachable!()));
    });
    group.finish();
}

/// The symbolic path: the root fragment of an XMark tree cut at `person`
/// contains one virtual node per person, so fresh variables flow through
/// every fold above them. Variables are minted per (virtual node, entry),
/// exactly as the distributed layer does.
fn bench_symbolic_path(c: &mut Criterion) {
    let tree = xmark_tree();
    let fragmented = paxml_fragment::strategy::cut_at_labels(&tree, &["person"]).unwrap();
    let root_fragment = fragmented.fragments[0].tree.clone();
    let query = compile_text(QUERY).unwrap();
    let qlen = query.qvect_len();
    let nodes = root_fragment.node_count() as u64;
    let virtuals = fragmented.fragment_count() - 1;

    let mut group = c.benchmark_group("exp8_vector_kernel_symbolic_path");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(nodes));

    let fresh = |node: NodeId, entry: usize, qdv: bool| -> Var {
        (node.index() as Var) * 1000 + (entry as Var) * 2 + Var::from(qdv)
    };

    group.bench_with_input(BenchmarkId::new("new", virtuals), &root_fragment, |b, tree| {
        b.iter(|| {
            qualifier_pass::<Var>(tree, tree.root(), &query, |vnode| QualVectors {
                qv: paxml_boolex::CompactVector::fresh_variables(qlen, |i| fresh(vnode, i, false)),
                qdv: paxml_boolex::CompactVector::fresh_variables(qlen, |i| fresh(vnode, i, true)),
            })
        });
    });
    group.bench_with_input(BenchmarkId::new("legacy", virtuals), &root_fragment, |b, tree| {
        b.iter(|| {
            legacy_qualifier_pass(tree, &query, |vnode, i, qdv| BoolExpr::var(fresh(vnode, i, qdv)))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_constant_path, bench_symbolic_path);
criterion_main!(benches);

//! Experiment 7 (new in this repository, beyond the paper): concurrent
//! multi-client serving throughput.
//!
//! The paper bounds the *per-query* network cost; a server for "heavy
//! traffic" also needs the execution path itself to scale with client
//! count. Since the `PaxServer` serving path takes `&self`, one server is
//! shared by `N` closed-loop client threads through an `Arc` — no queue, no
//! cloned deployments — and this experiment measures aggregate queries/sec
//! plus p50/p99 client-observed latency as `N` grows, for three serving
//! modes over the same FT2 deployment:
//!
//! * **PaX2-prepared** — `prepare` once, `execute` per request: after the
//!   first snapshot every execution is served from the residual-vector
//!   cache with zero site visits (the fixed-query/changing-data regime);
//! * **PaX2-oneshot** — `query_once` per request: the full two-visit
//!   protocol every time, concurrent executions interleaving their rounds
//!   over the shared worker pool;
//! * **Naive** — `query_once` on a ship-everything server: every request
//!   moves the whole document, so contention on the (simulated) network
//!   dominates.
//!
//! A report table prints the throughput curve before the timed Criterion
//! groups run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use paxml_core::{server::PaxServer, Algorithm, PreparedQuery};
use paxml_distsim::Placement;
use paxml_fragment::FragmentedTree;
use paxml_xmark::ft2;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const SEED: u64 = 42;
const SITES: usize = 10;
const VMB: f64 = 1.0;
const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];
const ITERS_PER_CLIENT: usize = 12;

/// The client mix: one cheap selection, one qualifier-heavy query.
const QUERIES: [&str; 2] = [
    "/sites/site/people/person/name",
    "/sites/site/people/person[profile/age > 20 and address/country=\"US\"]/creditcard",
];

fn server_for(algorithm: Algorithm, fragmented: &FragmentedTree) -> Arc<PaxServer> {
    Arc::new(
        PaxServer::builder()
            .algorithm(algorithm)
            .placement(Placement::RoundRobin)
            .sites(SITES)
            .deploy(fragmented)
            .expect("valid configuration"),
    )
}

/// One closed-loop run: `clients` threads each issue `iters` requests
/// back-to-back against the shared server. Returns the wall-clock time of
/// the whole run plus every client-observed request latency.
fn closed_loop(
    server: &Arc<PaxServer>,
    prepared: Option<Arc<Vec<PreparedQuery>>>,
    clients: usize,
    iters: usize,
) -> (Duration, Vec<Duration>) {
    let start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|client| {
            let server = Arc::clone(server);
            let prepared = prepared.clone();
            thread::spawn(move || {
                let mut latencies = Vec::with_capacity(iters);
                for i in 0..iters {
                    let pick = (client + i) % QUERIES.len();
                    let issued = Instant::now();
                    let report = match &prepared {
                        Some(queries) => server.execute(&queries[pick]).unwrap(),
                        None => server.query_once(QUERIES[pick]).unwrap(),
                    };
                    latencies.push(issued.elapsed());
                    // Every serving mode here stays within PaX2's bound
                    // (cached: 0 visits; one-shot PaX2: ≤ 2; naive: 1) and
                    // returns a query outcome.
                    assert!(report.max_visits_per_site() <= 2);
                    assert!(!report.queries.is_empty());
                }
                latencies
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(clients * iters);
    for worker in workers {
        latencies.extend(worker.join().unwrap());
    }
    (start.elapsed(), latencies)
}

fn percentile(sorted: &[Duration], p: usize) -> Duration {
    sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
}

/// Print the queries/sec and latency-percentile curve vs. client count.
fn throughput_table(fragmented: &FragmentedTree) {
    println!(
        "\nexp7: {ITERS_PER_CLIENT} closed-loop requests per client, {CLIENT_COUNTS:?} clients"
    );
    println!(
        "{:<14} {:>8} {:>12} {:>12} {:>12}",
        "series", "clients", "queries/s", "p50(us)", "p99(us)"
    );
    for &clients in &CLIENT_COUNTS {
        for (label, algorithm, prepare) in [
            ("PaX2-prepared", Algorithm::PaX2, true),
            ("PaX2-oneshot", Algorithm::PaX2, false),
            ("Naive", Algorithm::NaiveCentralized, false),
        ] {
            let server = server_for(algorithm, fragmented);
            let prepared = prepare.then(|| {
                let queries: Vec<PreparedQuery> =
                    QUERIES.iter().map(|q| server.prepare(q).unwrap()).collect();
                // Populate the residual caches outside the measured loop.
                for query in &queries {
                    server.execute(query).unwrap();
                }
                Arc::new(queries)
            });
            let (wall, mut latencies) = closed_loop(&server, prepared, clients, ITERS_PER_CLIENT);
            latencies.sort();
            let qps = (clients * ITERS_PER_CLIENT) as f64 / wall.as_secs_f64();
            println!(
                "{:<14} {:>8} {:>12.0} {:>12.1} {:>12.1}",
                label,
                clients,
                qps,
                percentile(&latencies, 50).as_secs_f64() * 1e6,
                percentile(&latencies, 99).as_secs_f64() * 1e6,
            );
        }
    }
    println!();
}

fn concurrent_throughput(c: &mut Criterion) {
    let (_, fragmented) = ft2(VMB, SEED);
    throughput_table(&fragmented);

    let mut group = c.benchmark_group("exp7_concurrent_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for &clients in &CLIENT_COUNTS {
        group.throughput(Throughput::Elements((clients * ITERS_PER_CLIENT) as u64));

        let server = server_for(Algorithm::PaX2, &fragmented);
        let queries: Vec<PreparedQuery> =
            QUERIES.iter().map(|q| server.prepare(q).unwrap()).collect();
        for query in &queries {
            server.execute(query).unwrap();
        }
        let queries = Arc::new(queries);
        group.bench_with_input(BenchmarkId::new("pax2-prepared", clients), &clients, |b, &n| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let (wall, _) =
                        closed_loop(&server, Some(Arc::clone(&queries)), n, ITERS_PER_CLIENT);
                    total += wall;
                }
                total
            });
        });

        let server = server_for(Algorithm::PaX2, &fragmented);
        group.bench_with_input(BenchmarkId::new("pax2-oneshot", clients), &clients, |b, &n| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let (wall, _) = closed_loop(&server, None, n, ITERS_PER_CLIENT);
                    total += wall;
                }
                total
            });
        });

        let server = server_for(Algorithm::NaiveCentralized, &fragmented);
        group.bench_with_input(BenchmarkId::new("naive", clients), &clients, |b, &n| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let (wall, _) = closed_loop(&server, None, n, ITERS_PER_CLIENT);
                    total += wall;
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group!(benches, concurrent_throughput);
criterion_main!(benches);

//! Criterion bench for Experiment 2 (Fig. 10): parallel evaluation time vs.
//! cumulative data size over the FT2 topology (10 fragments, 10 sites).
//!
//! * Fig. 10(a): Q1, PaX3-NA vs PaX3-XA.
//! * Fig. 10(b): Q2, PaX3-NA vs PaX3-XA.
//! * Fig. 10(c): Q3, PaX3-NA vs PaX2-NA vs PaX2-XA.
//! * Fig. 10(d): Q4, PaX3-NA vs PaX2-NA.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paxml_bench::{paper_query, run, Series};
use paxml_xmark::ft2;
use std::time::Duration;

const SEED: u64 = 42;
const SITES: usize = 10;
const SIZES: [f64; 3] = [2.0, 3.0, 4.0];

fn bench_figure(c: &mut Criterion, name: &str, query_name: &str, series_list: &[Series]) {
    let mut group = c.benchmark_group(name);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for &vmb in &SIZES {
        let (_, fragmented) = ft2(vmb, SEED);
        for &series in series_list {
            group.bench_with_input(
                BenchmarkId::new(series.label(), format!("{vmb}vMB")),
                &vmb,
                |b, _| {
                    b.iter(|| run(series, &fragmented, SITES, paper_query(query_name)));
                },
            );
        }
    }
    group.finish();
}

fn fig10a(c: &mut Criterion) {
    bench_figure(c, "fig10a_q1_vs_size", "Q1", &[Series::Pax3Na, Series::Pax3Xa]);
}
fn fig10b(c: &mut Criterion) {
    bench_figure(c, "fig10b_q2_vs_size", "Q2", &[Series::Pax3Na, Series::Pax3Xa]);
}
fn fig10c(c: &mut Criterion) {
    bench_figure(c, "fig10c_q3_vs_size", "Q3", &[Series::Pax3Na, Series::Pax2Na, Series::Pax2Xa]);
}
fn fig10d(c: &mut Criterion) {
    bench_figure(c, "fig10d_q4_vs_size", "Q4", &[Series::Pax3Na, Series::Pax2Na]);
}

criterion_group!(benches, fig10a, fig10b, fig10c, fig10d);
criterion_main!(benches);

//! Experiment 10 (new in this repository, beyond the paper): online
//! re-fragmentation under load.
//!
//! The paper fixes fragmentation and placement at deploy time;
//! `paxml-rebalance` makes both mutable online, published through the same
//! epoch machinery as updates. This experiment puts numbers on the two
//! promises that matter:
//!
//! * **readers never stall** — closed-loop readers execute prepared PaX2
//!   queries against a deliberately skewed deployment while a full
//!   cost-model rebalance pass (observe → plan → migrate → publish →
//!   vacuum) runs mid-stream; the client-observed p50/p99 read latencies
//!   are compared against the same reader run on an untouched server. If
//!   readers queued behind the migration, the tail would inflate by the
//!   whole transfer; with epoch publication the curves stay flat.
//! * **the plan actually helps** — after the pass, the max-site resident
//!   bytes of the skewed XMark deployment must have dropped, and every
//!   read must report which topology version served it.
//!
//! A report table prints both latency profiles and the before/after
//! max-site load before the timed Criterion groups run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use paxml_core::{server::PaxServer, Algorithm, PreparedQuery};
use paxml_distsim::Placement;
use paxml_fragment::FragmentedTree;
use paxml_rebalance::{rebalance, PlannerOptions, RebalanceOutcome};
use paxml_xmark::ft2;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const SEED: u64 = 42;
const SITES: usize = 10;
const VMB: f64 = 1.0;
const READER_COUNTS: [usize; 2] = [2, 4];
const ITERS_PER_READER: usize = 16;

/// The read mix: one cheap selection, one qualifier-heavy query.
const QUERIES: [&str; 2] = [
    "/sites/site/people/person/name",
    "/sites/site/people/person[profile/age > 20 and address/country=\"US\"]/creditcard",
];

/// A PaX2 server over the FT2 fragmentation with **everything on one
/// site** — the worst skew a placement can have — queries prepared and the
/// residual cache warm.
fn skewed_server(fragmented: &FragmentedTree) -> (Arc<PaxServer>, Arc<Vec<PreparedQuery>>) {
    let server = Arc::new(
        PaxServer::builder()
            .algorithm(Algorithm::PaX2)
            .placement(Placement::SingleSite)
            .sites(SITES)
            .deploy(fragmented)
            .expect("valid configuration"),
    );
    let queries: Vec<PreparedQuery> = QUERIES.iter().map(|q| server.prepare(q).unwrap()).collect();
    for query in &queries {
        server.execute(query).unwrap();
    }
    (server, Arc::new(queries))
}

/// One run: `readers` closed-loop reader threads; when `rebalance_mid_run`,
/// the main thread fires one full rebalance pass while they read. Returns
/// the readers' wall-clock time, every observed latency, and the pass
/// outcome (when one ran).
fn read_during_rebalance(
    server: &Arc<PaxServer>,
    queries: &Arc<Vec<PreparedQuery>>,
    readers: usize,
    rebalance_mid_run: bool,
) -> (Duration, Vec<Duration>, Option<RebalanceOutcome>) {
    let start = Instant::now();
    let workers: Vec<_> = (0..readers)
        .map(|reader| {
            let server = Arc::clone(server);
            let queries = Arc::clone(queries);
            thread::spawn(move || {
                let mut latencies = Vec::with_capacity(ITERS_PER_READER);
                for i in 0..ITERS_PER_READER {
                    let pick = (reader + i) % queries.len();
                    let issued = Instant::now();
                    let report = server.execute(&queries[pick]).unwrap();
                    latencies.push(issued.elapsed());
                    assert!(report.max_visits_per_site() <= 2);
                    // Every read names the topology that served it: either
                    // the skewed original or the rebalanced one, never a
                    // torn in-between.
                    assert!(report.placement_version <= 1, "impossible topology version");
                }
                latencies
            })
        })
        .collect();
    let outcome = rebalance_mid_run
        .then(|| rebalance(server, &PlannerOptions::default()).expect("rebalance pass"));
    let mut latencies = Vec::with_capacity(readers * ITERS_PER_READER);
    for worker in workers {
        latencies.extend(worker.join().unwrap());
    }
    (start.elapsed(), latencies, outcome)
}

fn percentile(sorted: &[Duration], p: usize) -> Duration {
    sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
}

/// Print idle vs mid-rebalance read latency side by side, plus the load
/// the pass shaved off the hot site.
fn latency_table(fragmented: &FragmentedTree) {
    println!(
        "\nexp10: {ITERS_PER_READER} closed-loop reads per reader, {READER_COUNTS:?} readers, \
         FT2 on {SITES} sites, everything on S0 until one rebalance pass runs mid-stream"
    );
    println!(
        "{:<18} {:>8} {:>12} {:>12} {:>12} {:>8} {:>22}",
        "series", "readers", "reads/s", "p50(us)", "p99(us)", "moves", "max site bytes"
    );
    for &readers in &READER_COUNTS {
        for rebalance_mid_run in [false, true] {
            let (server, queries) = skewed_server(fragmented);
            let (wall, mut latencies, outcome) =
                read_during_rebalance(&server, &queries, readers, rebalance_mid_run);
            latencies.sort();
            let label = if rebalance_mid_run { "mid-rebalance" } else { "idle" };
            let (moves, load) = match &outcome {
                Some(o) => {
                    assert!(
                        o.max_site_bytes_after < o.max_site_bytes_before,
                        "the pass must reduce the max-site load"
                    );
                    (
                        o.ops.len(),
                        format!("{} -> {}", o.max_site_bytes_before, o.max_site_bytes_after),
                    )
                }
                None => (0, "unchanged".to_string()),
            };
            println!(
                "{:<18} {:>8} {:>12.0} {:>12.1} {:>12.1} {:>8} {:>22}",
                label,
                readers,
                (readers * ITERS_PER_READER) as f64 / wall.as_secs_f64(),
                percentile(&latencies, 50).as_secs_f64() * 1e6,
                percentile(&latencies, 99).as_secs_f64() * 1e6,
                moves,
                load,
            );
        }
    }
    println!();
}

fn rebalance_bench(c: &mut Criterion) {
    let (_tree, fragmented) = ft2(VMB, SEED);
    latency_table(&fragmented);

    let mut group = c.benchmark_group("exp10_rebalance");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    // Reads while a rebalance pass runs vs reads on an untouched server —
    // the tail-latency-flatness claim, timed.
    for &readers in &READER_COUNTS {
        group.throughput(Throughput::Elements((readers * ITERS_PER_READER) as u64));
        for rebalance_mid_run in [false, true] {
            let label = if rebalance_mid_run { "reads-mid-rebalance" } else { "reads-idle" };
            group.bench_with_input(BenchmarkId::new(label, readers), &readers, |b, &n| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let (server, queries) = skewed_server(&fragmented);
                        let (wall, _, _) =
                            read_during_rebalance(&server, &queries, n, rebalance_mid_run);
                        total += wall;
                    }
                    total
                });
            });
        }
    }

    // The pass itself: observe → plan → migrate → publish → vacuum, on a
    // freshly skewed deployment each time.
    group.bench_function("full-rebalance-pass", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let (server, _queries) = skewed_server(&fragmented);
                let started = Instant::now();
                let outcome = rebalance(&server, &PlannerOptions::default()).unwrap();
                total += started.elapsed();
                assert!(outcome.report.is_some(), "a skewed deployment always yields a plan");
            }
            total
        });
    });
    group.finish();
}

criterion_group!(benches, rebalance_bench);
criterion_main!(benches);

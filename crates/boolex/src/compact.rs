//! The two-tier vector representation: packed bits until a variable
//! appears, explicit formulas afterwards.
//!
//! At every node not adjacent to a virtual node, all of the paper's vector
//! entries are constants; only the `O(k)` nodes near virtual nodes (for `k`
//! virtual nodes per fragment) carry residual formulas. [`CompactVector`]
//! materializes the constant case as a [`BitVector`] — `⌈len/64⌉` words on
//! the wire instead of a `Vec` of enum-tagged [`BoolExpr`]s — and falls back
//! to formulas only where unknowns actually flow.
//!
//! Canonical form: the `Formulas` arm is only used when at least one entry
//! is non-constant, so `Bits` vs `Formulas` is decidable from the content
//! and equality is structural.

use crate::bits::BitVector;
use crate::env::Assignment;
use crate::expr::BoolExpr;
use crate::vector::FormulaVector;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::hash::Hash;

/// A fixed-length vector of truth values, packed as bits while every entry
/// is a known constant and as formulas once a variable is introduced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CompactVector<V: Ord> {
    /// Every entry is a known constant — the overwhelmingly common case,
    /// and the only case a leaf (variable-free) fragment ever ships.
    Bits(BitVector),
    /// At least one entry still mentions a variable.
    Formulas(Vec<BoolExpr<V>>),
}

impl<V: Clone + Eq + Ord + Hash> CompactVector<V> {
    /// A vector of `len` entries, all `false`.
    pub fn all_false(len: usize) -> Self {
        CompactVector::Bits(BitVector::all_false(len))
    }

    /// A vector of `len` entries, all `true`.
    pub fn all_true(len: usize) -> Self {
        CompactVector::Bits(BitVector::all_true(len))
    }

    /// A vector of known constants.
    pub fn from_bools(bools: &[bool]) -> Self {
        CompactVector::Bits(BitVector::from_bools(bools))
    }

    /// A vector of fresh variables `fresh(i)` — what the paper introduces
    /// for each virtual node.
    pub fn fresh_variables(len: usize, fresh: impl Fn(usize) -> V) -> Self {
        CompactVector::Formulas((0..len).map(|i| BoolExpr::Var(fresh(i))).collect())
    }

    /// Build from explicit formulas, normalizing to `Bits` when every entry
    /// is constant.
    pub fn from_exprs(entries: Vec<BoolExpr<V>>) -> Self {
        if entries.iter().all(|e| e.as_const().is_some()) {
            let mut bits = BitVector::all_false(entries.len());
            for (i, e) in entries.iter().enumerate() {
                if e.as_const() == Some(true) {
                    bits.set(i, true);
                }
            }
            CompactVector::Bits(bits)
        } else {
            CompactVector::Formulas(entries)
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            CompactVector::Bits(b) => b.len(),
            CompactVector::Formulas(f) => f.len(),
        }
    }

    /// Is the vector empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The entry as an owned formula (a `Const` on the bits path — no
    /// allocation).
    pub fn expr(&self, index: usize) -> BoolExpr<V> {
        match self {
            CompactVector::Bits(b) => BoolExpr::Const(b.get(index)),
            CompactVector::Formulas(f) => f[index].clone(),
        }
    }

    /// The entry's truth value, when it is a constant.
    pub fn const_at(&self, index: usize) -> Option<bool> {
        match self {
            CompactVector::Bits(b) => Some(b.get(index)),
            CompactVector::Formulas(f) => f[index].as_const(),
        }
    }

    /// The last entry as an owned formula — the paper consults
    /// `SVv(|SVect(Q)|)` to decide whether a node is an answer.
    pub fn last_expr(&self) -> BoolExpr<V> {
        debug_assert!(!self.is_empty(), "vectors are never empty when consulted");
        self.expr(self.len() - 1)
    }

    /// Overwrite an entry, promoting to the `Formulas` arm when a
    /// non-constant formula lands in a bits vector and demoting back to
    /// `Bits` when the last symbolic entry is overwritten by a constant —
    /// the canonical-form invariant holds either way.
    pub fn set(&mut self, index: usize, value: BoolExpr<V>) {
        match self {
            CompactVector::Bits(b) => match value.as_const() {
                Some(v) => b.set(index, v),
                None => {
                    let mut entries: Vec<BoolExpr<V>> = b.iter().map(BoolExpr::Const).collect();
                    entries[index] = value;
                    *self = CompactVector::Formulas(entries);
                }
            },
            CompactVector::Formulas(f) => {
                let demote = value.as_const().is_some()
                    && f.iter().enumerate().all(|(i, e)| i == index || e.as_const().is_some());
                f[index] = value;
                if demote {
                    *self = Self::from_exprs(std::mem::take(f));
                }
            }
        }
    }

    /// Are all entries constants?
    pub fn is_fully_resolved(&self) -> bool {
        match self {
            CompactVector::Bits(_) => true,
            CompactVector::Formulas(f) => f.iter().all(|e| e.as_const().is_some()),
        }
    }

    /// If fully resolved, the vector of plain booleans.
    pub fn as_bools(&self) -> Option<Vec<bool>> {
        match self {
            CompactVector::Bits(b) => Some(b.to_bools()),
            CompactVector::Formulas(f) => f.iter().map(BoolExpr::as_const).collect(),
        }
    }

    /// Apply a partial truth-value lookup to every entry, demoting back to
    /// `Bits` when the result is fully resolved.
    pub fn assign_with(&self, lookup: &impl Fn(&V) -> Option<bool>) -> Self {
        match self {
            CompactVector::Bits(_) => self.clone(),
            CompactVector::Formulas(f) => {
                Self::from_exprs(f.iter().map(|e| e.assign_with(lookup)).collect())
            }
        }
    }

    /// Apply an [`Assignment`] to every entry.
    pub fn assign(&self, env: &Assignment<V>) -> Self {
        self.assign_with(&|v| env.get(v))
    }

    /// Resolve every entry to a definite truth value under `lookup`,
    /// treating undecidable entries as `false` (the coordinator's unification
    /// default: a vector the pruning removed can never decide an answer).
    pub fn resolve_bits(&self, lookup: &impl Fn(&V) -> Option<bool>) -> BitVector {
        match self {
            CompactVector::Bits(b) => b.clone(),
            CompactVector::Formulas(f) => {
                let mut bits = BitVector::all_false(f.len());
                for (i, e) in f.iter().enumerate() {
                    if e.eval_with(lookup) == Some(true) {
                        bits.set(i, true);
                    }
                }
                bits
            }
        }
    }

    /// All variables mentioned anywhere in the vector (empty on the bits
    /// path).
    pub fn variables(&self) -> BTreeSet<V> {
        match self {
            CompactVector::Bits(_) => BTreeSet::new(),
            CompactVector::Formulas(f) => {
                let mut out = BTreeSet::new();
                for e in f {
                    out.extend(e.variables());
                }
                out
            }
        }
    }

    /// Total syntactic size (a bits entry counts 1, like a `Const` node) —
    /// used by tests asserting the communication bound.
    pub fn total_size(&self) -> usize {
        match self {
            CompactVector::Bits(b) => b.len(),
            CompactVector::Formulas(f) => f.iter().map(BoolExpr::size).sum(),
        }
    }

    /// Convert to the legacy formula-per-entry representation.
    pub fn to_formula_vector(&self) -> FormulaVector<V> {
        FormulaVector::from_entries((0..self.len()).map(|i| self.expr(i)).collect())
    }

    /// Convert from the legacy formula-per-entry representation.
    pub fn from_formula_vector(vector: &FormulaVector<V>) -> Self {
        Self::from_exprs(vector.iter().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type CV = CompactVector<&'static str>;

    #[test]
    fn constant_vectors_stay_bits() {
        let mut v = CV::all_false(5);
        assert!(matches!(v, CompactVector::Bits(_)));
        v.set(2, BoolExpr::Const(true));
        assert!(matches!(v, CompactVector::Bits(_)));
        assert_eq!(v.const_at(2), Some(true));
        assert_eq!(v.as_bools(), Some(vec![false, false, true, false, false]));
        assert!(v.is_fully_resolved());
        assert_eq!(v.total_size(), 5);
        assert!(v.variables().is_empty());
    }

    #[test]
    fn introducing_a_variable_promotes() {
        let mut v = CV::all_false(3);
        v.set(1, BoolExpr::var("x"));
        assert!(matches!(v, CompactVector::Formulas(_)));
        assert_eq!(v.expr(0), BoolExpr::Const(false));
        assert_eq!(v.expr(1), BoolExpr::var("x"));
        assert!(!v.is_fully_resolved());
        assert_eq!(v.as_bools(), None);
        assert_eq!(v.variables().len(), 1);
        // Overwriting the last symbolic entry with a constant demotes back
        // to the canonical bits form.
        v.set(1, BoolExpr::Const(true));
        assert!(matches!(v, CompactVector::Bits(_)));
        assert_eq!(v, CompactVector::from_bools(&[false, true, false]));
    }

    #[test]
    fn assign_demotes_back_to_bits() {
        let mut v = CV::all_false(3);
        v.set(0, BoolExpr::var("x"));
        v.set(2, BoolExpr::and(BoolExpr::var("x"), BoolExpr::var("y")));
        let partial = v.assign_with(&|name| (*name == "x").then_some(true));
        assert!(matches!(partial, CompactVector::Formulas(_)));
        assert_eq!(partial.const_at(0), Some(true));
        let full = partial.assign_with(&|_| Some(false));
        assert!(matches!(full, CompactVector::Bits(_)));
        assert_eq!(full.as_bools(), Some(vec![true, false, false]));
    }

    #[test]
    fn resolve_bits_defaults_unknowns_to_false() {
        let v = CV::fresh_variables(3, |_| "u");
        let bits = v.resolve_bits(&|_| None);
        assert_eq!(bits.to_bools(), vec![false, false, false]);
        let bits = v.resolve_bits(&|_| Some(true));
        assert_eq!(bits.to_bools(), vec![true, true, true]);
    }

    #[test]
    fn formula_vector_round_trip() {
        let mut fv: FormulaVector<&'static str> = FormulaVector::all_false(4);
        fv.set(1, BoolExpr::var("a"));
        let cv = CV::from_formula_vector(&fv);
        assert!(matches!(cv, CompactVector::Formulas(_)));
        assert_eq!(cv.to_formula_vector(), fv);
        // A constant formula vector normalizes to bits.
        let constant: FormulaVector<&'static str> = FormulaVector::all_true(4);
        let cv = CV::from_formula_vector(&constant);
        assert!(matches!(cv, CompactVector::Bits(_)));
        assert_eq!(cv.last_expr(), BoolExpr::Const(true));
    }
}

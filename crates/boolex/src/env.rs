//! Variable environments: truth-value assignments and formula substitutions.

use crate::expr::BoolExpr;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::hash::Hash;

/// A (possibly partial) mapping from variables to truth values.
///
/// Used when the coordinator has fully resolved the vectors of a fragment and
/// pushes concrete truth values back to the sites (Stage 2/3 of PaX3,
/// Stage 2 of PaX2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment<V: Ord> {
    values: BTreeMap<V, bool>,
}

impl<V: Ord> Default for Assignment<V> {
    fn default() -> Self {
        Assignment { values: BTreeMap::new() }
    }
}

impl<V: Clone + Eq + Ord + Hash> Assignment<V> {
    /// An empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `var` to `value`, replacing any previous binding.
    pub fn set(&mut self, var: V, value: bool) {
        self.values.insert(var, value);
    }

    /// Look up a variable.
    pub fn get(&self, var: &V) -> Option<bool> {
        self.values.get(var).copied()
    }

    /// Is the assignment empty?
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Merge another assignment into this one. Later bindings win on
    /// conflict, mirroring how fresher information from the coordinator
    /// overrides stale local guesses (in practice the two never disagree).
    pub fn extend(&mut self, other: &Assignment<V>) {
        for (k, v) in &other.values {
            self.values.insert(k.clone(), *v);
        }
    }

    /// Iterate over the bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&V, bool)> {
        self.values.iter().map(|(k, v)| (k, *v))
    }

    /// Build an assignment from an iterator of bindings.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(bindings: impl IntoIterator<Item = (V, bool)>) -> Self {
        Assignment { values: bindings.into_iter().collect() }
    }
}

/// A mapping from variables to *formulas* — the general form of unification
/// performed by `evalFT` when the vector received from a sub-fragment still
/// contains that sub-fragment's own variables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Substitution<V: Ord> {
    values: BTreeMap<V, BoolExpr<V>>,
}

impl<V: Ord> Default for Substitution<V> {
    fn default() -> Self {
        Substitution { values: BTreeMap::new() }
    }
}

impl<V: Clone + Eq + Ord + Hash> Substitution<V> {
    /// An empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `var` to `formula`, replacing any previous binding.
    pub fn set(&mut self, var: V, formula: BoolExpr<V>) {
        self.values.insert(var, formula);
    }

    /// Look up a variable.
    pub fn get(&self, var: &V) -> Option<&BoolExpr<V>> {
        self.values.get(var)
    }

    /// Is the substitution empty?
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Iterate over the bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&V, &BoolExpr<V>)> {
        self.values.iter()
    }

    /// Convert an [`Assignment`] into the equivalent constant substitution.
    pub fn from_assignment(assignment: &Assignment<V>) -> Self {
        Substitution {
            values: assignment.iter().map(|(k, v)| (k.clone(), BoolExpr::Const(v))).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_set_get_extend() {
        let mut a: Assignment<&str> = Assignment::new();
        assert!(a.is_empty());
        a.set("x", true);
        a.set("y", false);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(&"x"), Some(true));
        assert_eq!(a.get(&"z"), None);

        let mut b = Assignment::new();
        b.set("y", true);
        b.set("z", false);
        a.extend(&b);
        assert_eq!(a.get(&"y"), Some(true));
        assert_eq!(a.get(&"z"), Some(false));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn assignment_from_iter_and_iter_round_trip() {
        let a = Assignment::from_iter(vec![("b", false), ("a", true)]);
        let collected: Vec<_> = a.iter().map(|(k, v)| (*k, v)).collect();
        assert_eq!(collected, vec![("a", true), ("b", false)]);
    }

    #[test]
    fn substitution_binds_formulas() {
        let mut s: Substitution<&str> = Substitution::new();
        assert!(s.is_empty());
        s.set("x4", BoolExpr::var("cx3"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&"x4"), Some(&BoolExpr::var("cx3")));
        assert_eq!(s.get(&"other"), None);
    }

    #[test]
    fn substitution_from_assignment_is_constant() {
        let mut a: Assignment<&str> = Assignment::new();
        a.set("p", true);
        a.set("q", false);
        let s = Substitution::from_assignment(&a);
        assert_eq!(s.get(&"p"), Some(&BoolExpr::Const(true)));
        assert_eq!(s.get(&"q"), Some(&BoolExpr::Const(false)));
        let iterated: Vec<_> = s.iter().map(|(k, _)| *k).collect();
        assert_eq!(iterated, vec!["p", "q"]);
    }
}

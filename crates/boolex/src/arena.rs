//! A hash-consing arena for Boolean formulas — the symbolic-path
//! representation of the evaluation kernel.
//!
//! [`crate::BoolExpr`] is a pointer tree (`Box`/`Vec` per node); every
//! `assign`/`substitute` walks and *re-allocates* the whole tree, and every
//! `or_all`/`and_all` deep-clones operands into a dedup set. Near virtual
//! nodes — the only places where formulas actually occur — the same `O(k)`
//! sub-formulas are combined over and over, so the tree representation pays
//! the same allocations repeatedly.
//!
//! [`FormulaArena`] stores every distinct sub-formula **once** as an
//! interned node addressed by a 4-byte [`ExprId`]. Structural sharing makes
//! equality a integer compare, deduplication a sort of ids, and
//! `assign`/`substitute` memoizable per node: each distinct sub-formula is
//! rewritten at most once per environment no matter how often it is shared.
//!
//! Constants are the two fixed ids [`ExprId::FALSE`] and [`ExprId::TRUE`];
//! the simplifying constructors fold constants eagerly (exactly like the
//! `BoolExpr` smart constructors), so a non-constant id always denotes a
//! formula that mentions at least one variable.

use crate::expr::BoolExpr;
use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;

/// An interned formula: an index into a [`FormulaArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

impl ExprId {
    /// The constant `false` (present in every arena).
    pub const FALSE: ExprId = ExprId(0);
    /// The constant `true` (present in every arena).
    pub const TRUE: ExprId = ExprId(1);

    /// The constant with the given truth value.
    pub fn of_const(value: bool) -> ExprId {
        if value {
            ExprId::TRUE
        } else {
            ExprId::FALSE
        }
    }

    /// The truth value, when this id denotes a constant.
    pub fn as_const(self) -> Option<bool> {
        match self {
            ExprId::FALSE => Some(false),
            ExprId::TRUE => Some(true),
            _ => None,
        }
    }

    /// Does this id denote a constant?
    pub fn is_const(self) -> bool {
        self.0 < 2
    }
}

/// One interned node. The `And`/`Or` operand lists hold the invariants of
/// the `BoolExpr` constructors: no nested connective of the same kind, no
/// constants, no duplicates, at least two operands — plus a new one made
/// possible by interning: operands are sorted by id, so two conjunctions of
/// the same operands intern to the same node regardless of build order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Node<V> {
    Const(bool),
    Var(V),
    Not(ExprId),
    And(Box<[ExprId]>),
    Or(Box<[ExprId]>),
}

/// A hash-consing formula arena over variables of type `V`.
pub struct FormulaArena<V> {
    nodes: Vec<Node<V>>,
    intern: HashMap<Node<V>, ExprId>,
}

impl<V: Clone + Eq + Hash + Ord> Default for FormulaArena<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone + Eq + Hash + Ord> FormulaArena<V> {
    /// An arena holding just the two constants.
    pub fn new() -> Self {
        let mut arena = FormulaArena { nodes: Vec::new(), intern: HashMap::new() };
        arena.intern(Node::Const(false));
        arena.intern(Node::Const(true));
        arena
    }

    /// Number of distinct interned formulas (including the two constants).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false — the constants are interned at construction.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn intern(&mut self, node: Node<V>) -> ExprId {
        if let Some(&id) = self.intern.get(&node) {
            return id;
        }
        let id = ExprId(u32::try_from(self.nodes.len()).expect("arena overflow"));
        self.nodes.push(node.clone());
        self.intern.insert(node, id);
        id
    }

    /// Intern a variable.
    pub fn var(&mut self, v: V) -> ExprId {
        self.intern(Node::Var(v))
    }

    /// Negation with simplification (`¬¬f = f`, `¬const` folds).
    pub fn not(&mut self, operand: ExprId) -> ExprId {
        if let Some(b) = operand.as_const() {
            return ExprId::of_const(!b);
        }
        if let Node::Not(inner) = self.nodes[operand.0 as usize] {
            return inner;
        }
        self.intern(Node::Not(operand))
    }

    /// Binary conjunction; the constant cases never touch the intern table.
    pub fn and(&mut self, a: ExprId, b: ExprId) -> ExprId {
        match (a.as_const(), b.as_const()) {
            (Some(false), _) | (_, Some(false)) => ExprId::FALSE,
            (Some(true), _) => b,
            (_, Some(true)) => a,
            _ if a == b => a,
            _ => self.and_all([a, b]),
        }
    }

    /// Binary disjunction; the constant cases never touch the intern table.
    pub fn or(&mut self, a: ExprId, b: ExprId) -> ExprId {
        match (a.as_const(), b.as_const()) {
            (Some(true), _) | (_, Some(true)) => ExprId::TRUE,
            (Some(false), _) => b,
            (_, Some(false)) => a,
            _ if a == b => a,
            _ => self.or_all([a, b]),
        }
    }

    /// N-ary conjunction with flattening, constant folding and id-level
    /// deduplication (a sort of `u32`s — no formula is ever cloned).
    pub fn and_all(&mut self, operands: impl IntoIterator<Item = ExprId>) -> ExprId {
        let mut flat: Vec<ExprId> = Vec::new();
        for op in operands {
            match op {
                ExprId::TRUE => {}
                ExprId::FALSE => return ExprId::FALSE,
                _ => match &self.nodes[op.0 as usize] {
                    Node::And(inner) => flat.extend(inner.iter().copied()),
                    _ => flat.push(op),
                },
            }
        }
        flat.sort_unstable();
        flat.dedup();
        match flat.len() {
            0 => ExprId::TRUE,
            1 => flat[0],
            _ => self.intern(Node::And(flat.into_boxed_slice())),
        }
    }

    /// N-ary disjunction with flattening, constant folding and id-level
    /// deduplication.
    pub fn or_all(&mut self, operands: impl IntoIterator<Item = ExprId>) -> ExprId {
        let mut flat: Vec<ExprId> = Vec::new();
        for op in operands {
            match op {
                ExprId::FALSE => {}
                ExprId::TRUE => return ExprId::TRUE,
                _ => match &self.nodes[op.0 as usize] {
                    Node::Or(inner) => flat.extend(inner.iter().copied()),
                    _ => flat.push(op),
                },
            }
        }
        flat.sort_unstable();
        flat.dedup();
        match flat.len() {
            0 => ExprId::FALSE,
            1 => flat[0],
            _ => self.intern(Node::Or(flat.into_boxed_slice())),
        }
    }

    /// Substitute truth values for variables (unmapped variables stay
    /// symbolic) and re-simplify. `memo` caches rewrites per node id for one
    /// environment; pass the same map while the environment is unchanged and
    /// a fresh one afterwards. Shared sub-formulas are rewritten once.
    pub fn assign(
        &mut self,
        id: ExprId,
        lookup: &impl Fn(&V) -> Option<bool>,
        memo: &mut HashMap<ExprId, ExprId>,
    ) -> ExprId {
        if id.is_const() {
            return id;
        }
        if let Some(&done) = memo.get(&id) {
            return done;
        }
        let result = match self.nodes[id.0 as usize].clone() {
            Node::Const(b) => ExprId::of_const(b),
            Node::Var(v) => match lookup(&v) {
                Some(b) => ExprId::of_const(b),
                None => id,
            },
            Node::Not(inner) => {
                let inner = self.assign(inner, lookup, memo);
                self.not(inner)
            }
            Node::And(ops) => {
                let mapped: Vec<ExprId> =
                    ops.iter().map(|&op| self.assign(op, lookup, memo)).collect();
                self.and_all(mapped)
            }
            Node::Or(ops) => {
                let mapped: Vec<ExprId> =
                    ops.iter().map(|&op| self.assign(op, lookup, memo)).collect();
                self.or_all(mapped)
            }
        };
        memo.insert(id, result);
        result
    }

    /// Substitute *formulas* (arena ids) for the ids listed in `map` —
    /// general unification. Typically the keys are variable ids, as in the
    /// PaX2 local-placeholder unification. Like [`FormulaArena::assign`],
    /// each distinct sub-formula is rewritten at most once per `memo`.
    pub fn substitute_ids(
        &mut self,
        id: ExprId,
        map: &HashMap<ExprId, ExprId>,
        memo: &mut HashMap<ExprId, ExprId>,
    ) -> ExprId {
        if let Some(&mapped) = map.get(&id) {
            return mapped;
        }
        if id.is_const() {
            return id;
        }
        if let Some(&done) = memo.get(&id) {
            return done;
        }
        let result = match self.nodes[id.0 as usize].clone() {
            Node::Const(b) => ExprId::of_const(b),
            Node::Var(_) => id,
            Node::Not(inner) => {
                let inner = self.substitute_ids(inner, map, memo);
                self.not(inner)
            }
            Node::And(ops) => {
                let mapped: Vec<ExprId> =
                    ops.iter().map(|&op| self.substitute_ids(op, map, memo)).collect();
                self.and_all(mapped)
            }
            Node::Or(ops) => {
                let mapped: Vec<ExprId> =
                    ops.iter().map(|&op| self.substitute_ids(op, map, memo)).collect();
                self.or_all(mapped)
            }
        };
        memo.insert(id, result);
        result
    }

    /// Import a [`BoolExpr`] tree (re-simplifying through the interning
    /// constructors; constants cost nothing).
    pub fn from_expr(&mut self, expr: &BoolExpr<V>) -> ExprId {
        match expr {
            BoolExpr::Const(b) => ExprId::of_const(*b),
            BoolExpr::Var(v) => self.var(v.clone()),
            BoolExpr::Not(inner) => {
                let inner = self.from_expr(inner);
                self.not(inner)
            }
            BoolExpr::And(ops) => {
                let mapped: Vec<ExprId> = ops.iter().map(|op| self.from_expr(op)).collect();
                self.and_all(mapped)
            }
            BoolExpr::Or(ops) => {
                let mapped: Vec<ExprId> = ops.iter().map(|op| self.from_expr(op)).collect();
                self.or_all(mapped)
            }
        }
    }

    /// Export an interned formula as a self-contained [`BoolExpr`] tree —
    /// the wire form for the `O(k)` residual formulas that actually leave a
    /// site.
    pub fn to_expr(&self, id: ExprId) -> BoolExpr<V> {
        match &self.nodes[id.0 as usize] {
            Node::Const(b) => BoolExpr::Const(*b),
            Node::Var(v) => BoolExpr::Var(v.clone()),
            Node::Not(inner) => BoolExpr::Not(Box::new(self.to_expr(*inner))),
            Node::And(ops) => BoolExpr::And(ops.iter().map(|&op| self.to_expr(op)).collect()),
            Node::Or(ops) => BoolExpr::Or(ops.iter().map(|&op| self.to_expr(op)).collect()),
        }
    }

    /// Collect the variables mentioned by a formula.
    pub fn variables(&self, id: ExprId, out: &mut BTreeSet<V>) {
        match &self.nodes[id.0 as usize] {
            Node::Const(_) => {}
            Node::Var(v) => {
                out.insert(v.clone());
            }
            Node::Not(inner) => self.variables(*inner, out),
            Node::And(ops) | Node::Or(ops) => {
                for &op in ops.iter() {
                    self.variables(op, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Arena = FormulaArena<&'static str>;

    #[test]
    fn constants_are_fixed_ids() {
        let arena = Arena::new();
        assert_eq!(ExprId::of_const(false), ExprId::FALSE);
        assert_eq!(ExprId::of_const(true), ExprId::TRUE);
        assert_eq!(ExprId::FALSE.as_const(), Some(false));
        assert!(!arena.is_empty());
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn interning_shares_structure() {
        let mut arena = Arena::new();
        let x = arena.var("x");
        let y = arena.var("y");
        let a = arena.and(x, y);
        let b = arena.and(y, x); // sorted operands → same node
        assert_eq!(a, b);
        assert_eq!(arena.var("x"), x);
        let before = arena.len();
        let _ = arena.and(x, y);
        assert_eq!(arena.len(), before, "re-building an existing formula allocates nothing");
    }

    #[test]
    fn constant_folding_matches_bool_expr() {
        let mut arena = Arena::new();
        let x = arena.var("x");
        assert_eq!(arena.and(ExprId::TRUE, x), x);
        assert_eq!(arena.and(ExprId::FALSE, x), ExprId::FALSE);
        assert_eq!(arena.or(ExprId::FALSE, x), x);
        assert_eq!(arena.or(ExprId::TRUE, x), ExprId::TRUE);
        let nn = arena.not(x);
        assert_eq!(arena.not(nn), x);
        assert_eq!(arena.and_all([]), ExprId::TRUE);
        assert_eq!(arena.or_all([]), ExprId::FALSE);
        assert_eq!(arena.and_all([x, x, x]), x);
    }

    #[test]
    fn assign_resolves_and_memoizes() {
        let mut arena = Arena::new();
        let x = arena.var("x");
        let y = arena.var("y");
        let ny = arena.not(y);
        let f = arena.and(x, ny); // x ∧ ¬y
        let mut memo = HashMap::new();
        let g = arena.assign(f, &|v| (*v == "y").then_some(false), &mut memo);
        assert_eq!(g, x);
        let h = arena.assign(f, &|v| (*v == "y").then_some(false), &mut memo);
        assert_eq!(h, x, "memoized result is stable");
        let mut memo2 = HashMap::new();
        let all = arena.assign(f, &|_| Some(true), &mut memo2);
        assert_eq!(all, ExprId::FALSE);
    }

    #[test]
    fn substitute_ids_performs_local_unification() {
        // The PaX2 pattern: placeholder qz ↦ computed value y₈.
        let mut arena = Arena::new();
        let qz = arena.var("qz");
        let z = arena.var("z");
        let y8 = arena.var("y8");
        let f = arena.and(z, qz);
        let map = HashMap::from([(qz, y8)]);
        let mut memo = HashMap::new();
        let g = arena.substitute_ids(f, &map, &mut memo);
        let expected = arena.and(z, y8);
        assert_eq!(g, expected);
    }

    #[test]
    fn round_trips_through_bool_expr() {
        let mut arena = Arena::new();
        type E = BoolExpr<&'static str>;
        let e = E::or(E::and(E::var("a"), E::not(E::var("b"))), E::var("c"));
        let id = arena.from_expr(&e);
        let back = arena.to_expr(id);
        // Semantically identical under every total assignment.
        for bits in 0..8u32 {
            let env = crate::Assignment::from_iter([
                ("a", bits & 1 != 0),
                ("b", bits & 2 != 0),
                ("c", bits & 4 != 0),
            ]);
            assert_eq!(back.eval(&env), e.eval(&env));
        }
        let mut vars = BTreeSet::new();
        arena.variables(id, &mut vars);
        assert_eq!(vars.into_iter().collect::<Vec<_>>(), vec!["a", "b", "c"]);
    }
}

//! Boolean formulas over generic variables, with simplifying constructors.

use crate::env::{Assignment, Substitution};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::hash::Hash;

/// A Boolean formula over variables of type `V`.
///
/// `V` is usually a small value identifying a `(fragment, vector, entry)`
/// slot; see `paxml-core`. All constructors simplify eagerly:
///
/// * constants are folded (`true ∧ f = f`, `false ∧ f = false`, …),
/// * nested conjunctions/disjunctions are flattened,
/// * duplicate operands are removed,
/// * double negation is removed.
///
/// Eager simplification matters for the paper's communication bound: a
/// residual formula produced while evaluating a fragment mentions only
/// variables of that fragment's virtual nodes, so after simplification its
/// size stays `O(k)` where `k` is the number of virtual nodes — never
/// proportional to the fragment's data size.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BoolExpr<V> {
    /// A known truth value.
    Const(bool),
    /// An unknown, named by a variable.
    Var(V),
    /// Negation.
    Not(Box<BoolExpr<V>>),
    /// Conjunction of two or more operands (invariant: no nested `And`, no
    /// constants, no duplicates, at least two operands).
    And(Vec<BoolExpr<V>>),
    /// Disjunction of two or more operands (same invariants as `And`).
    Or(Vec<BoolExpr<V>>),
}

impl<V> From<bool> for BoolExpr<V> {
    fn from(b: bool) -> Self {
        BoolExpr::Const(b)
    }
}

impl<V: Clone + Eq + Ord + Hash> BoolExpr<V> {
    /// The constant `true` or `false`.
    pub fn constant(value: bool) -> Self {
        BoolExpr::Const(value)
    }

    /// A single variable.
    pub fn var(v: V) -> Self {
        BoolExpr::Var(v)
    }

    /// Negation with simplification (`¬¬f = f`, `¬true = false`).
    #[allow(clippy::should_implement_trait)]
    pub fn not(operand: BoolExpr<V>) -> Self {
        match operand {
            BoolExpr::Const(b) => BoolExpr::Const(!b),
            BoolExpr::Not(inner) => *inner,
            other => BoolExpr::Not(Box::new(other)),
        }
    }

    /// Conjunction with simplification.
    ///
    /// The constant cases are handled without any allocation: this is the
    /// innermost operation of the per-node vector computations, where almost
    /// every operand is already a known truth value.
    pub fn and(a: BoolExpr<V>, b: BoolExpr<V>) -> Self {
        match (a, b) {
            (BoolExpr::Const(false), _) | (_, BoolExpr::Const(false)) => BoolExpr::Const(false),
            (BoolExpr::Const(true), x) | (x, BoolExpr::Const(true)) => x,
            (a, b) => Self::and_all([a, b]),
        }
    }

    /// Disjunction with simplification (constant cases allocation-free).
    pub fn or(a: BoolExpr<V>, b: BoolExpr<V>) -> Self {
        match (a, b) {
            (BoolExpr::Const(true), _) | (_, BoolExpr::Const(true)) => BoolExpr::Const(true),
            (BoolExpr::Const(false), x) | (x, BoolExpr::Const(false)) => x,
            (a, b) => Self::or_all([a, b]),
        }
    }

    /// N-ary conjunction with simplification. An empty conjunction is `true`.
    pub fn and_all(operands: impl IntoIterator<Item = BoolExpr<V>>) -> Self {
        let mut flat: Vec<BoolExpr<V>> = Vec::new();
        for op in operands {
            match op {
                BoolExpr::Const(true) => {}
                BoolExpr::Const(false) => return BoolExpr::Const(false),
                BoolExpr::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        Self::dedup(&mut flat);
        match flat.len() {
            0 => BoolExpr::Const(true),
            1 => flat.pop().expect("length checked"),
            _ => BoolExpr::And(flat),
        }
    }

    /// N-ary disjunction with simplification. An empty disjunction is `false`.
    pub fn or_all(operands: impl IntoIterator<Item = BoolExpr<V>>) -> Self {
        let mut flat: Vec<BoolExpr<V>> = Vec::new();
        for op in operands {
            match op {
                BoolExpr::Const(false) => {}
                BoolExpr::Const(true) => return BoolExpr::Const(true),
                BoolExpr::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        Self::dedup(&mut flat);
        match flat.len() {
            0 => BoolExpr::Const(false),
            1 => flat.pop().expect("length checked"),
            _ => BoolExpr::Or(flat),
        }
    }

    /// Remove duplicate operands while keeping the first occurrence's order.
    /// Small operand lists (the overwhelmingly common case) are deduplicated
    /// with a quadratic scan to avoid allocating a set; larger lists sort a
    /// permutation of indices, so no operand is ever cloned either way.
    fn dedup(operands: &mut Vec<BoolExpr<V>>) {
        if operands.len() <= 1 {
            return;
        }
        if operands.len() <= 8 {
            let mut i = 1;
            while i < operands.len() {
                if operands[..i].contains(&operands[i]) {
                    operands.remove(i);
                } else {
                    i += 1;
                }
            }
            return;
        }
        // Sort indices by operand; within a run of equal operands only the
        // first occurrence (smallest original index) survives.
        let mut order: Vec<usize> = (0..operands.len()).collect();
        order.sort_unstable_by(|&a, &b| operands[a].cmp(&operands[b]).then(a.cmp(&b)));
        let mut keep = vec![true; operands.len()];
        for pair in order.windows(2) {
            if operands[pair[0]] == operands[pair[1]] {
                keep[pair[1]] = false;
            }
        }
        let mut index = 0;
        operands.retain(|_| {
            let k = keep[index];
            index += 1;
            k
        });
    }

    /// Is this formula a constant? Returns the constant value if so.
    pub fn as_const(&self) -> Option<bool> {
        match self {
            BoolExpr::Const(b) => Some(*b),
            _ => None,
        }
    }

    /// Is this formula the constant `true`?
    pub fn is_true(&self) -> bool {
        matches!(self, BoolExpr::Const(true))
    }

    /// Is this formula the constant `false`?
    pub fn is_false(&self) -> bool {
        matches!(self, BoolExpr::Const(false))
    }

    /// Does the formula still contain unknowns?
    pub fn has_variables(&self) -> bool {
        match self {
            BoolExpr::Const(_) => false,
            BoolExpr::Var(_) => true,
            BoolExpr::Not(f) => f.has_variables(),
            BoolExpr::And(fs) | BoolExpr::Or(fs) => fs.iter().any(|f| f.has_variables()),
        }
    }

    /// The set of variables mentioned by the formula.
    pub fn variables(&self) -> BTreeSet<V> {
        let mut out = BTreeSet::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables(&self, out: &mut BTreeSet<V>) {
        match self {
            BoolExpr::Const(_) => {}
            BoolExpr::Var(v) => {
                out.insert(v.clone());
            }
            BoolExpr::Not(f) => f.collect_variables(out),
            BoolExpr::And(fs) | BoolExpr::Or(fs) => {
                for f in fs {
                    f.collect_variables(out);
                }
            }
        }
    }

    /// Number of syntax-tree nodes — used by tests asserting the
    /// communication bound (formulas shipped between sites stay small).
    pub fn size(&self) -> usize {
        match self {
            BoolExpr::Const(_) | BoolExpr::Var(_) => 1,
            BoolExpr::Not(f) => 1 + f.size(),
            BoolExpr::And(fs) | BoolExpr::Or(fs) => {
                1 + fs.iter().map(BoolExpr::size).sum::<usize>()
            }
        }
    }

    /// Evaluate under a (possibly partial) assignment. Returns `None` when a
    /// variable needed to decide the value is missing from the assignment.
    ///
    /// Short-circuits: an `Or` with one operand known `true` is `true` even
    /// if other operands mention unassigned variables (and dually for `And`),
    /// matching how `evalFT` can conclude early.
    pub fn eval(&self, env: &Assignment<V>) -> Option<bool> {
        self.eval_with(&|v| env.get(v))
    }

    /// [`BoolExpr::eval`] with a generic variable lookup — lets callers
    /// resolve variables from dense (bitset) environments without building a
    /// `BTreeMap` first.
    pub fn eval_with(&self, env: &impl Fn(&V) -> Option<bool>) -> Option<bool> {
        match self {
            BoolExpr::Const(b) => Some(*b),
            BoolExpr::Var(v) => env(v),
            BoolExpr::Not(f) => f.eval_with(env).map(|b| !b),
            BoolExpr::And(fs) => {
                let mut all_known = true;
                for f in fs {
                    match f.eval_with(env) {
                        Some(false) => return Some(false),
                        Some(true) => {}
                        None => all_known = false,
                    }
                }
                if all_known {
                    Some(true)
                } else {
                    None
                }
            }
            BoolExpr::Or(fs) => {
                let mut all_known = true;
                for f in fs {
                    match f.eval_with(env) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => all_known = false,
                    }
                }
                if all_known {
                    Some(false)
                } else {
                    None
                }
            }
        }
    }

    /// Substitute truth values for the variables present in `env`, leaving
    /// the remaining variables symbolic, and re-simplify. This is the core
    /// operation of the paper's `evalFT` and of Stage 2/3 unification.
    pub fn assign(&self, env: &Assignment<V>) -> BoolExpr<V> {
        self.assign_with(&|v| env.get(v))
    }

    /// [`BoolExpr::assign`] with a generic variable lookup — the dense
    /// (bitset) environments of the coordinator resolve variables without
    /// materializing a map.
    pub fn assign_with(&self, env: &impl Fn(&V) -> Option<bool>) -> BoolExpr<V> {
        match self {
            BoolExpr::Const(b) => BoolExpr::Const(*b),
            BoolExpr::Var(v) => match env(v) {
                Some(b) => BoolExpr::Const(b),
                None => BoolExpr::Var(v.clone()),
            },
            BoolExpr::Not(f) => Self::not(f.assign_with(env)),
            BoolExpr::And(fs) => Self::and_all(fs.iter().map(|f| f.assign_with(env))),
            BoolExpr::Or(fs) => Self::or_all(fs.iter().map(|f| f.assign_with(env))),
        }
    }

    /// Substitute *formulas* for variables (general unification), leaving
    /// unmapped variables symbolic, and re-simplify.
    pub fn substitute(&self, env: &Substitution<V>) -> BoolExpr<V> {
        match self {
            BoolExpr::Const(b) => BoolExpr::Const(*b),
            BoolExpr::Var(v) => match env.get(v) {
                Some(f) => f.clone(),
                None => BoolExpr::Var(v.clone()),
            },
            BoolExpr::Not(f) => Self::not(f.substitute(env)),
            BoolExpr::And(fs) => Self::and_all(fs.iter().map(|f| f.substitute(env))),
            BoolExpr::Or(fs) => Self::or_all(fs.iter().map(|f| f.substitute(env))),
        }
    }

    /// Rename every variable through `f`, preserving structure.
    pub fn map_vars<W, F>(&self, f: &F) -> BoolExpr<W>
    where
        W: Clone + Eq + Ord + Hash,
        F: Fn(&V) -> W,
    {
        match self {
            BoolExpr::Const(b) => BoolExpr::Const(*b),
            BoolExpr::Var(v) => BoolExpr::Var(f(v)),
            BoolExpr::Not(inner) => BoolExpr::not(inner.map_vars(f)),
            BoolExpr::And(fs) => BoolExpr::and_all(fs.iter().map(|x| x.map_vars(f))),
            BoolExpr::Or(fs) => BoolExpr::or_all(fs.iter().map(|x| x.map_vars(f))),
        }
    }
}

impl<V: fmt::Display> fmt::Display for BoolExpr<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::Const(b) => write!(f, "{b}"),
            BoolExpr::Var(v) => write!(f, "{v}"),
            BoolExpr::Not(inner) => write!(f, "¬({inner})"),
            BoolExpr::And(fs) => {
                write!(f, "(")?;
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            BoolExpr::Or(fs) => {
                write!(f, "(")?;
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type E = BoolExpr<&'static str>;

    #[test]
    fn constant_folding_in_and() {
        let x = E::var("x");
        assert_eq!(E::and(E::constant(true), x.clone()), x);
        assert_eq!(E::and(E::constant(false), x.clone()), E::constant(false));
        assert_eq!(E::and(x.clone(), E::constant(true)), x);
        assert_eq!(E::and_all(Vec::<E>::new()), E::constant(true));
    }

    #[test]
    fn constant_folding_in_or() {
        let x = E::var("x");
        assert_eq!(E::or(E::constant(false), x.clone()), x);
        assert_eq!(E::or(E::constant(true), x.clone()), E::constant(true));
        assert_eq!(E::or_all(Vec::<E>::new()), E::constant(false));
    }

    #[test]
    fn double_negation_and_constant_negation() {
        let x = E::var("x");
        assert_eq!(E::not(E::not(x.clone())), x);
        assert_eq!(E::not(E::constant(true)), E::constant(false));
        assert_eq!(E::not(E::constant(false)), E::constant(true));
    }

    #[test]
    fn nested_connectives_are_flattened_and_deduped() {
        let x = E::var("x");
        let y = E::var("y");
        let z = E::var("z");
        let f = E::and(E::and(x.clone(), y.clone()), E::and(y.clone(), z.clone()));
        match &f {
            BoolExpr::And(ops) => assert_eq!(ops.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
        let g = E::or(E::or(x.clone(), x.clone()), x.clone());
        assert_eq!(g, x);
    }

    #[test]
    fn variables_and_size() {
        let f = E::and(E::var("a"), E::or(E::var("b"), E::not(E::var("a"))));
        let vars: Vec<_> = f.variables().into_iter().collect();
        assert_eq!(vars, vec!["a", "b"]);
        assert!(f.has_variables());
        assert!(f.size() >= 5);
        assert!(!E::constant(true).has_variables());
    }

    #[test]
    fn eval_with_total_assignment() {
        let f = E::and(E::var("a"), E::or(E::var("b"), E::not(E::var("c"))));
        let mut env = Assignment::new();
        env.set("a", true);
        env.set("b", false);
        env.set("c", false);
        assert_eq!(f.eval(&env), Some(true));
        env.set("c", true);
        assert_eq!(f.eval(&env), Some(false));
    }

    #[test]
    fn eval_short_circuits_with_partial_assignment() {
        let f = E::or(E::var("known"), E::var("unknown"));
        let mut env = Assignment::new();
        env.set("known", true);
        assert_eq!(f.eval(&env), Some(true));
        let g = E::and(E::var("known2"), E::var("unknown"));
        let mut env = Assignment::new();
        env.set("known2", false);
        assert_eq!(g.eval(&env), Some(false));
        // But a genuinely undecidable formula yields None.
        let h = E::and(E::var("unknown"), E::constant(true));
        assert_eq!(h.eval(&Assignment::new()), None);
    }

    #[test]
    fn assign_partially_then_fully() {
        let f = E::and(E::var("z1"), E::var("y8"));
        let mut env = Assignment::new();
        env.set("y8", true);
        let g = f.assign(&env);
        assert_eq!(g, E::var("z1"));
        let mut env2 = Assignment::new();
        env2.set("z1", true);
        assert_eq!(g.assign(&env2), E::constant(true));
    }

    #[test]
    fn substitute_formulas_for_variables() {
        // The paper's Example 3.1: x4 (qualifier value at virtual node F1)
        // is unified with cx3 (child vector entry of F1's root).
        let x4 = E::var("x4");
        let mut sub = Substitution::new();
        sub.set("x4", E::var("cx3"));
        assert_eq!(x4.substitute(&sub), E::var("cx3"));
        // Substitution simplifies: x ∧ f where f ↦ true collapses.
        let f = E::and(E::var("x"), E::var("q"));
        let mut sub = Substitution::new();
        sub.set("q", E::constant(true));
        assert_eq!(f.substitute(&sub), E::var("x"));
    }

    #[test]
    fn map_vars_renames() {
        let f = E::and(E::var("a"), E::not(E::var("b")));
        let g: BoolExpr<String> = f.map_vars(&|v| format!("F1.{v}"));
        let vars: Vec<_> = g.variables().into_iter().collect();
        assert_eq!(vars, vec!["F1.a".to_string(), "F1.b".to_string()]);
    }

    #[test]
    fn display_is_readable() {
        let f = E::and(E::var("z1"), E::not(E::var("y8")));
        let s = f.to_string();
        assert!(s.contains("z1"));
        assert!(s.contains("∧"));
        assert!(s.contains("¬"));
    }

    #[test]
    fn or_of_x_and_not_x_is_not_collapsed_but_evaluates_correctly() {
        // We deliberately do not implement full tautology detection — the
        // paper does not need it — but evaluation must still be correct.
        let f = E::or(E::var("x"), E::not(E::var("x")));
        let mut env = Assignment::new();
        env.set("x", false);
        assert_eq!(f.eval(&env), Some(true));
        env.set("x", true);
        assert_eq!(f.eval(&env), Some(true));
    }
}

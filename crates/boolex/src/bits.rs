//! Packed bit vectors — the constant-path representation of the paper's
//! `QV`/`QDV`/`SV` vectors.
//!
//! At every node that is *not* adjacent to a virtual node, all vector
//! entries are already known truth values. Storing them as one bit each (in
//! `u64` words) instead of one heap-allocated [`crate::BoolExpr`] each makes
//! the per-node vector computations allocation-free and lets the child-fold
//! loops of the evaluation passes run word-wise: 64 entries per AND/OR
//! instruction instead of one enum match per entry.

use serde::{Deserialize, Serialize};

/// A fixed-length vector of booleans packed 64 to a `u64` word.
///
/// Invariant: bits at positions `>= len` are always zero, so `==` and `Hash`
/// on the raw words are canonical.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVector {
    len: usize,
    words: Vec<u64>,
}

/// Number of `u64` words needed for `len` bits.
fn words_for(len: usize) -> usize {
    len.div_ceil(64)
}

impl BitVector {
    /// A vector of `len` entries, all `false`.
    pub fn all_false(len: usize) -> Self {
        BitVector { len, words: vec![0; words_for(len)] }
    }

    /// A vector of `len` entries, all `true`.
    pub fn all_true(len: usize) -> Self {
        let mut v = BitVector { len, words: vec![u64::MAX; words_for(len)] };
        v.mask_tail();
        v
    }

    /// Build from a slice of booleans.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut v = BitVector::all_false(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                v.words[i / 64] |= 1u64 << (i % 64);
            }
        }
        v
    }

    /// Zero out the unused high bits of the last word (the canonical-form
    /// invariant behind `Eq`/`Hash`).
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the vector empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read one entry.
    pub fn get(&self, index: usize) -> bool {
        debug_assert!(index < self.len, "bit index {index} out of range {}", self.len);
        self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Write one entry.
    pub fn set(&mut self, index: usize, value: bool) {
        debug_assert!(index < self.len, "bit index {index} out of range {}", self.len);
        let mask = 1u64 << (index % 64);
        if value {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Word-wise `self |= other`. Both vectors must have the same length.
    pub fn or_assign(&mut self, other: &BitVector) {
        debug_assert_eq!(self.len, other.len);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Word-wise `self &= other`. Both vectors must have the same length.
    pub fn and_assign(&mut self, other: &BitVector) {
        debug_assert_eq!(self.len, other.len);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// Word-wise complement, preserving the canonical-form invariant.
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Number of `true` entries.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is any entry `true`?
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Unpack into a `Vec<bool>`.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Iterate over the entries as booleans.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(|i| self.get(i))
    }

    /// The packed words backing the vector (`⌈len/64⌉` of them) — what a
    /// leaf fragment actually ships over the wire.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut v = BitVector::all_false(70);
        assert_eq!(v.len(), 70);
        assert_eq!(v.words().len(), 2);
        assert!(!v.any());
        v.set(0, true);
        v.set(69, true);
        assert!(v.get(0) && v.get(69) && !v.get(35));
        assert_eq!(v.count_ones(), 2);
        v.set(69, false);
        assert_eq!(v.count_ones(), 1);
    }

    #[test]
    fn all_true_is_canonical() {
        let t = BitVector::all_true(65);
        assert_eq!(t.count_ones(), 65);
        // The 63 unused bits of the second word must be zero so Eq works.
        assert_eq!(t.words()[1], 1);
        let mut built = BitVector::all_false(65);
        for i in 0..65 {
            built.set(i, true);
        }
        assert_eq!(t, built);
    }

    #[test]
    fn word_wise_ops_match_elementwise() {
        let a = BitVector::from_bools(&[true, false, true, false, true]);
        let b = BitVector::from_bools(&[true, true, false, false, true]);
        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(or.to_bools(), vec![true, true, true, false, true]);
        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(and.to_bools(), vec![true, false, false, false, true]);
        let mut not = a.clone();
        not.not_assign();
        assert_eq!(not.to_bools(), vec![false, true, false, true, false]);
        assert_eq!(not.words().len(), 1);
        assert!(not.words()[0] < 32, "tail bits must stay masked");
    }

    #[test]
    fn round_trips_through_bools() {
        let bools: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let v = BitVector::from_bools(&bools);
        assert_eq!(v.to_bools(), bools);
        assert_eq!(v.iter().collect::<Vec<_>>(), bools);
    }
}

//! Fixed-length vectors of formulas — the `QV`, `QCV`, `QDV` and `SV`
//! vectors that the paper attaches to tree nodes and ships between sites.

use crate::env::{Assignment, Substitution};
use crate::expr::BoolExpr;
use serde::{Deserialize, Serialize};
use std::hash::Hash;
use std::ops::Index;

/// A vector of Boolean formulas with one entry per (sub-)query of `QVect(Q)`
/// or `SVect(Q)`.
///
/// The length is fixed at construction time — it is always `O(|Q|)`, which is
/// what makes per-fragment messages independent of the data size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FormulaVector<V: Ord> {
    entries: Vec<BoolExpr<V>>,
}

impl<V: Clone + Eq + Ord + Hash> FormulaVector<V> {
    /// A vector of `len` entries, all `false` (the paper's initial value for
    /// every vector entry).
    pub fn all_false(len: usize) -> Self {
        FormulaVector { entries: vec![BoolExpr::Const(false); len] }
    }

    /// A vector of `len` entries, all `true`.
    pub fn all_true(len: usize) -> Self {
        FormulaVector { entries: vec![BoolExpr::Const(true); len] }
    }

    /// A vector of fresh variables produced by `fresh(i)` for entry `i` —
    /// exactly what the paper does for each virtual node ("we introduce
    /// fresh variables since we do not know the value for any of the entries
    /// in the vector", Example 3.1).
    pub fn fresh_variables(len: usize, fresh: impl Fn(usize) -> V) -> Self {
        FormulaVector { entries: (0..len).map(|i| BoolExpr::Var(fresh(i))).collect() }
    }

    /// Build from explicit entries.
    pub fn from_entries(entries: Vec<BoolExpr<V>>) -> Self {
        FormulaVector { entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the vector empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Borrow an entry.
    pub fn get(&self, index: usize) -> &BoolExpr<V> {
        &self.entries[index]
    }

    /// The last entry — the paper repeatedly consults
    /// `SVv(|SVect(Q)|)` to decide whether a node is an answer.
    pub fn last(&self) -> &BoolExpr<V> {
        self.entries.last().expect("formula vectors are never empty when consulted")
    }

    /// Overwrite an entry.
    pub fn set(&mut self, index: usize, value: BoolExpr<V>) {
        self.entries[index] = value;
    }

    /// Iterate over the entries.
    pub fn iter(&self) -> impl Iterator<Item = &BoolExpr<V>> {
        self.entries.iter()
    }

    /// Are all entries constants (no residual variables)?
    pub fn is_fully_resolved(&self) -> bool {
        self.entries.iter().all(|e| e.as_const().is_some())
    }

    /// If fully resolved, the vector of plain booleans.
    pub fn as_bools(&self) -> Option<Vec<bool>> {
        self.entries.iter().map(BoolExpr::as_const).collect()
    }

    /// Apply a truth-value assignment to every entry.
    pub fn assign(&self, env: &Assignment<V>) -> Self {
        FormulaVector { entries: self.entries.iter().map(|e| e.assign(env)).collect() }
    }

    /// Apply a formula substitution to every entry.
    pub fn substitute(&self, env: &Substitution<V>) -> Self {
        FormulaVector { entries: self.entries.iter().map(|e| e.substitute(env)).collect() }
    }

    /// Total syntactic size of all entries (used to check the communication
    /// bound: vectors shipped to the coordinator stay `O(|Q|)`).
    pub fn total_size(&self) -> usize {
        self.entries.iter().map(BoolExpr::size).sum()
    }

    /// All variables mentioned anywhere in the vector.
    pub fn variables(&self) -> std::collections::BTreeSet<V> {
        let mut out = std::collections::BTreeSet::new();
        for e in &self.entries {
            out.extend(e.variables());
        }
        out
    }

    /// Build the substitution `{ fresh(i) ↦ entries[i] }` that unifies the
    /// fresh variables introduced for a virtual node with the actual vector
    /// computed at the root of the corresponding sub-fragment — the heart of
    /// the paper's `evalFT` procedure.
    pub fn unifier(&self, fresh: impl Fn(usize) -> V) -> Substitution<V> {
        let mut sub = Substitution::new();
        for (i, entry) in self.entries.iter().enumerate() {
            sub.set(fresh(i), entry.clone());
        }
        sub
    }
}

impl<V: Clone + Eq + Ord + Hash> Index<usize> for FormulaVector<V> {
    type Output = BoolExpr<V>;
    fn index(&self, index: usize) -> &BoolExpr<V> {
        &self.entries[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type E = BoolExpr<String>;

    fn var(name: &str) -> E {
        BoolExpr::var(name.to_string())
    }

    #[test]
    fn constructors_and_accessors() {
        let v: FormulaVector<String> = FormulaVector::all_false(3);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert!(v.is_fully_resolved());
        assert_eq!(v.as_bools(), Some(vec![false, false, false]));
        assert!(v.last().is_false());

        let t: FormulaVector<String> = FormulaVector::all_true(2);
        assert_eq!(t.as_bools(), Some(vec![true, true]));
    }

    #[test]
    fn fresh_variables_mirror_the_papers_virtual_node_vectors() {
        let v = FormulaVector::fresh_variables(4, |i| format!("x{}", i + 1));
        assert_eq!(v.len(), 4);
        assert!(!v.is_fully_resolved());
        assert_eq!(v[0], var("x1"));
        assert_eq!(v[3], var("x4"));
        assert_eq!(v.variables().len(), 4);
    }

    #[test]
    fn set_get_and_index() {
        let mut v: FormulaVector<String> = FormulaVector::all_false(2);
        v.set(1, var("a"));
        assert_eq!(*v.get(1), var("a"));
        assert_eq!(v[0], E::constant(false));
        let collected: Vec<_> = v.iter().cloned().collect();
        assert_eq!(collected, vec![E::constant(false), var("a")]);
    }

    #[test]
    fn assign_resolves_variables() {
        let mut v: FormulaVector<String> = FormulaVector::all_false(3);
        v.set(0, var("x1"));
        v.set(2, BoolExpr::and(var("x1"), var("x2")));
        let mut env = Assignment::new();
        env.set("x1".to_string(), true);
        let w = v.assign(&env);
        assert_eq!(w[0], E::constant(true));
        assert_eq!(w[2], var("x2"));
        env.set("x2".to_string(), false);
        let z = v.assign(&env);
        assert!(z.is_fully_resolved());
        assert_eq!(z.as_bools(), Some(vec![true, false, false]));
    }

    #[test]
    fn unifier_matches_example_3_2() {
        // Fragment F2's root vector QV_market has entry q8 = true; fragment
        // F1 introduced variables y1..y9 for virtual node F2. The unifier
        // must map y8 ↦ true so that q9 in QV_broker becomes true.
        let mut qv_market: FormulaVector<String> = FormulaVector::all_false(9);
        qv_market.set(7, E::constant(true)); // q8 is true
        let sub = qv_market.unifier(|i| format!("y{}", i + 1));
        let qv_broker_entry_q9 = var("y8");
        assert_eq!(qv_broker_entry_q9.substitute(&sub), E::constant(true));
        // And an entry depending on a still-false value stays false.
        assert_eq!(var("y1").substitute(&sub), E::constant(false));
    }

    #[test]
    fn total_size_is_linear_in_entries_for_constant_vectors() {
        let v: FormulaVector<String> = FormulaVector::all_false(10);
        assert_eq!(v.total_size(), 10);
    }
}

//! # paxml-boolex — residual Boolean formulas for partial evaluation
//!
//! Partial evaluation of an XPath query over a single fragment of a
//! distributed XML tree cannot always decide a truth value: the parts of the
//! tree held by other sites are missing and are represented by *virtual
//! nodes*. The paper (§3.1) handles this by introducing **Boolean variables**
//! for every unknown vector entry at every virtual node, and letting the
//! value of a qualifier or selection-path entry be a **Boolean formula** over
//! those variables — the *residual function* of partial evaluation.
//!
//! This crate provides that formula language:
//!
//! * [`BoolExpr<V>`] — formulas with constants, variables of a user-chosen
//!   type `V`, negation, conjunction and disjunction, built through
//!   simplifying smart constructors so that fully-known sub-results collapse
//!   to constants immediately (this is what keeps the vectors shipped between
//!   sites of size `O(|Q|)`).
//! * [`Assignment`] / [`Substitution`] — environments mapping variables to
//!   truth values or to other formulas, used by `evalFT` when unifying the
//!   variables of a parent fragment with the vectors received from its
//!   sub-fragments.
//! * [`FormulaVector`] — a fixed-length vector of formulas: the `QV`/`QCV`/
//!   `QDV`/`SV` vectors of the paper.
//! * [`BitVector`] / [`CompactVector`] — the two-tier vector representation:
//!   packed `u64` words while every entry is a known constant (the
//!   overwhelmingly common case, and the only case a variable-free leaf
//!   fragment ever ships), explicit formulas once a variable appears.
//! * [`FormulaArena`] / [`ExprId`] — a hash-consing arena interning every
//!   distinct sub-formula once, so the evaluation kernel's symbolic path
//!   combines, assigns and substitutes formulas without cloning subtrees.
//!
//! ```
//! use paxml_boolex::{BoolExpr, Assignment};
//!
//! // (x8 ∧ true) ∨ ¬x8  — variables here are just strings.
//! let x8: BoolExpr<String> = BoolExpr::var("x8".to_string());
//! let f = BoolExpr::or(BoolExpr::and(x8.clone(), BoolExpr::constant(true)), BoolExpr::not(x8));
//! let mut env = Assignment::new();
//! env.set("x8".to_string(), false);
//! assert_eq!(f.eval(&env), Some(true));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod arena;
mod bits;
mod compact;
mod env;
mod expr;
mod vector;

pub use arena::{ExprId, FormulaArena};
pub use bits::BitVector;
pub use compact::CompactVector;
pub use env::{Assignment, Substitution};
pub use expr::BoolExpr;
pub use vector::FormulaVector;

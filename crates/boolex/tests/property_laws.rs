//! Property-based tests of the residual-formula engine: the simplifying
//! constructors must never change the *meaning* of a formula, and
//! substitution must commute with evaluation. These invariants are what the
//! correctness of the whole partial-evaluation pipeline rests on.

use paxml_boolex::{Assignment, BoolExpr, FormulaVector, Substitution};
use proptest::prelude::*;

type Var = u8;
type Expr = BoolExpr<Var>;

/// A random formula over variables 0..4, depth ≤ 4.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![any::<bool>().prop_map(Expr::constant), (0u8..4).prop_map(Expr::var),];
    leaf.prop_recursive(4, 64, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(Expr::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::or(a, b)),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Expr::and_all),
            prop::collection::vec(inner, 0..4).prop_map(Expr::or_all),
        ]
    })
}

/// A total assignment for variables 0..4.
fn assignment_strategy() -> impl Strategy<Value = Assignment<Var>> {
    prop::collection::vec(any::<bool>(), 4).prop_map(|values| {
        Assignment::from_iter(values.into_iter().enumerate().map(|(i, b)| (i as u8, b)))
    })
}

/// Evaluate a formula naively (no short-circuiting, no reliance on the
/// simplifier) — the independent reference for the laws below.
fn naive_eval(e: &Expr, env: &Assignment<Var>) -> bool {
    match e {
        BoolExpr::Const(b) => *b,
        BoolExpr::Var(v) => env.get(v).expect("total assignment"),
        BoolExpr::Not(inner) => !naive_eval(inner, env),
        BoolExpr::And(parts) => parts.iter().all(|p| naive_eval(p, env)),
        BoolExpr::Or(parts) => parts.iter().any(|p| naive_eval(p, env)),
    }
}

proptest! {
    #[test]
    fn constructors_preserve_semantics(e in expr_strategy(), env in assignment_strategy()) {
        // Rebuilding the formula through the smart constructors (which
        // flatten, fold constants and deduplicate) must not change its value.
        fn rebuild(e: &Expr) -> Expr {
            match e {
                BoolExpr::Const(b) => Expr::constant(*b),
                BoolExpr::Var(v) => Expr::var(*v),
                BoolExpr::Not(inner) => Expr::not(rebuild(inner)),
                BoolExpr::And(parts) => Expr::and_all(parts.iter().map(rebuild)),
                BoolExpr::Or(parts) => Expr::or_all(parts.iter().map(rebuild)),
            }
        }
        let rebuilt = rebuild(&e);
        prop_assert_eq!(naive_eval(&e, &env), naive_eval(&rebuilt, &env));
        // eval() agrees with the naive evaluator under a total assignment.
        prop_assert_eq!(e.eval(&env), Some(naive_eval(&e, &env)));
    }

    #[test]
    fn assign_then_eval_equals_eval(e in expr_strategy(), env in assignment_strategy()) {
        // Substituting the assignment must produce a constant with the same
        // value as evaluating directly.
        let assigned = e.assign(&env);
        prop_assert_eq!(assigned.as_const(), Some(naive_eval(&e, &env)));
        prop_assert!(!assigned.has_variables());
    }

    #[test]
    fn partial_assignment_never_changes_the_final_value(
        e in expr_strategy(),
        env in assignment_strategy(),
        keep in prop::collection::vec(any::<bool>(), 4),
    ) {
        // Splitting an assignment into two rounds (as the coordinator does
        // across stages) gives the same result as applying it at once.
        let mut first = Assignment::new();
        let mut second = Assignment::new();
        for (var, value) in env.iter() {
            if keep[*var as usize] {
                first.set(*var, value);
            } else {
                second.set(*var, value);
            }
        }
        let staged = e.assign(&first).assign(&second);
        prop_assert_eq!(staged.as_const(), Some(naive_eval(&e, &env)));
    }

    #[test]
    fn substitution_respects_composition(e in expr_strategy(), env in assignment_strategy()) {
        // Substituting formulas that are themselves constants behaves like a
        // plain assignment.
        let sub = Substitution::from_assignment(&env);
        prop_assert_eq!(e.substitute(&sub).as_const(), Some(naive_eval(&e, &env)));
    }

    #[test]
    fn simplification_never_grows_formulas(e in expr_strategy()) {
        // The smart constructors only ever shrink or keep the size — the
        // property behind the O(|Q|) message-size bound.
        fn rebuild(e: &Expr) -> Expr {
            match e {
                BoolExpr::Const(b) => Expr::constant(*b),
                BoolExpr::Var(v) => Expr::var(*v),
                BoolExpr::Not(inner) => Expr::not(rebuild(inner)),
                BoolExpr::And(parts) => Expr::and_all(parts.iter().map(rebuild)),
                BoolExpr::Or(parts) => Expr::or_all(parts.iter().map(rebuild)),
            }
        }
        prop_assert!(rebuild(&e).size() <= e.size());
    }

    #[test]
    fn vector_assignment_is_entrywise(
        entries in prop::collection::vec(expr_strategy(), 1..6),
        env in assignment_strategy(),
    ) {
        let vector = FormulaVector::from_entries(entries.clone());
        let assigned = vector.assign(&env);
        for (i, entry) in entries.iter().enumerate() {
            prop_assert_eq!(assigned[i].clone(), entry.assign(&env));
        }
        prop_assert!(assigned.is_fully_resolved());
        prop_assert_eq!(assigned.as_bools().map(|b| b.len()), Some(entries.len()));
    }
}

//! Property tests: the interned-arena / compact-vector kernel is
//! semantically identical to the legacy `BoolExpr`/`FormulaVector`
//! representation on random formulas.
//!
//! Every operation pair (build, n-ary connectives, assign, substitute,
//! vector assign) is checked by evaluating both results under *every* total
//! assignment of the variable universe — bit-identical truth tables, not
//! just structural plausibility.

use paxml_boolex::{Assignment, BoolExpr, CompactVector, ExprId, FormulaArena, FormulaVector};
use proptest::prelude::*;
use std::collections::HashMap;

type E = BoolExpr<u8>;

const VARS: u8 = 6;

/// Random formulas over variables 0..VARS, built through the simplifying
/// constructors (exactly how the kernel builds them).
fn arb_expr() -> impl Strategy<Value = E> {
    let leaf =
        prop_oneof![any::<bool>().prop_map(BoolExpr::Const), (0..VARS).prop_map(BoolExpr::var),];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(BoolExpr::not),
            prop::collection::vec(inner.clone(), 0..4).prop_map(BoolExpr::and_all),
            prop::collection::vec(inner, 0..4).prop_map(BoolExpr::or_all),
        ]
    })
}

/// The total assignment encoded by the low VARS bits of `bits`.
fn total_env(bits: u32) -> Assignment<u8> {
    Assignment::from_iter((0..VARS).map(|v| (v, bits & (1 << v) != 0)))
}

/// Truth table of a formula over the full variable universe.
fn truth_table(e: &E) -> Vec<bool> {
    (0..1u32 << VARS)
        .map(|bits| e.eval(&total_env(bits)).expect("total assignment decides everything"))
        .collect()
}

proptest! {
    #[test]
    fn arena_round_trip_preserves_the_truth_table(e in arb_expr()) {
        let mut arena: FormulaArena<u8> = FormulaArena::new();
        let id = arena.from_expr(&e);
        let back = arena.to_expr(id);
        prop_assert_eq!(truth_table(&back), truth_table(&e));
        // The arena's constant folding agrees with the legacy constructors'.
        prop_assert_eq!(id.as_const(), e.as_const());
    }

    #[test]
    fn arena_assign_matches_bool_expr_assign(
        e in arb_expr(),
        assigned_mask in 0u32..1 << VARS,
        values in 0u32..1 << VARS,
    ) {
        let lookup = |v: &u8| -> Option<bool> {
            (assigned_mask & (1 << v) != 0).then(|| values & (1 << v) != 0)
        };
        let legacy = e.assign_with(&lookup);

        let mut arena: FormulaArena<u8> = FormulaArena::new();
        let id = arena.from_expr(&e);
        let mut memo = HashMap::new();
        let assigned = arena.assign(id, &lookup, &mut memo);
        let arena_result = arena.to_expr(assigned);

        prop_assert_eq!(truth_table(&arena_result), truth_table(&legacy));
        // Both representations agree on whether the result is decided.
        prop_assert_eq!(assigned.as_const(), legacy.as_const());
    }

    #[test]
    fn arena_connectives_match_bool_expr_connectives(ops in prop::collection::vec(arb_expr(), 0..5)) {
        let legacy_and = E::and_all(ops.clone());
        let legacy_or = E::or_all(ops.clone());

        let mut arena: FormulaArena<u8> = FormulaArena::new();
        let ids: Vec<ExprId> = ops.iter().map(|e| arena.from_expr(e)).collect();
        let arena_and = arena.and_all(ids.clone());
        let arena_or = arena.or_all(ids);

        prop_assert_eq!(truth_table(&arena.to_expr(arena_and)), truth_table(&legacy_and));
        prop_assert_eq!(truth_table(&arena.to_expr(arena_or)), truth_table(&legacy_or));
    }

    #[test]
    fn arena_substitution_matches_bool_expr_substitution(
        e in arb_expr(),
        replacement in arb_expr(),
        var in 0..VARS,
    ) {
        // Legacy: substitute `replacement` for `var` as a formula.
        let mut sub = paxml_boolex::Substitution::new();
        sub.set(var, replacement.clone());
        let legacy = e.substitute(&sub);

        let mut arena: FormulaArena<u8> = FormulaArena::new();
        let id = arena.from_expr(&e);
        let var_id = arena.var(var);
        let repl_id = arena.from_expr(&replacement);
        let map = HashMap::from([(var_id, repl_id)]);
        let mut memo = HashMap::new();
        let substituted = arena.substitute_ids(id, &map, &mut memo);

        prop_assert_eq!(truth_table(&arena.to_expr(substituted)), truth_table(&legacy));
    }

    #[test]
    fn compact_vector_matches_formula_vector(
        entries in prop::collection::vec(arb_expr(), 1..6),
        assigned_mask in 0u32..1 << VARS,
        values in 0u32..1 << VARS,
    ) {
        let legacy = FormulaVector::from_entries(entries.clone());
        let compact = CompactVector::from_exprs(entries.clone());
        prop_assert_eq!(compact.len(), legacy.len());

        // Canonical form: bits iff every entry is constant.
        let all_const = entries.iter().all(|e| e.as_const().is_some());
        prop_assert_eq!(matches!(compact, CompactVector::Bits(_)), all_const);

        for i in 0..legacy.len() {
            prop_assert_eq!(truth_table(&compact.expr(i)), truth_table(legacy.get(i)));
        }

        // Assignment agrees entry-wise and re-canonicalizes.
        let lookup = |v: &u8| -> Option<bool> {
            (assigned_mask & (1 << v) != 0).then(|| values & (1 << v) != 0)
        };
        let env = Assignment::from_iter(
            (0..VARS).filter_map(|v| lookup(&v).map(|value| (v, value))),
        );
        let legacy_assigned = legacy.assign(&env);
        let compact_assigned = compact.assign_with(&lookup);
        for i in 0..legacy.len() {
            prop_assert_eq!(
                truth_table(&compact_assigned.expr(i)),
                truth_table(legacy_assigned.get(i))
            );
        }
        prop_assert_eq!(
            matches!(compact_assigned, CompactVector::Bits(_)),
            legacy_assigned.is_fully_resolved(),
            "assign must demote to bits exactly when fully resolved"
        );
    }
}

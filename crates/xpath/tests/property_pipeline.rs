//! Property-based tests of the query pipeline (parse → display → reparse,
//! normalize, compile) and of the equivalence between the two independent
//! evaluators of this crate (the vector-based two-pass algorithm and the
//! naive set-based oracle) over random documents and random queries.

use paxml_xml::{NodeId, NodeKind, XmlTree};
use paxml_xpath::{centralized, compile, compile_text, normalize, parse, semantics};
use proptest::prelude::*;

const LABELS: &[&str] = &["a", "b", "c", "d"];
const TEXTS: &[&str] = &["x", "US", "7", "42"];

fn build_tree(spec: &[(usize, usize)]) -> XmlTree {
    let mut tree = XmlTree::with_root_element(LABELS[0]);
    let mut elements: Vec<NodeId> = vec![tree.root()];
    for &(parent_choice, kind) in spec {
        let parent = elements[parent_choice % elements.len()];
        if kind % 5 == 4 {
            tree.append_child(parent, NodeKind::text(TEXTS[kind % TEXTS.len()]));
        } else {
            let id = tree.append_element(parent, LABELS[kind % LABELS.len()]);
            elements.push(id);
        }
    }
    tree
}

fn tree_strategy() -> impl Strategy<Value = XmlTree> {
    prop::collection::vec((0usize..500, 0usize..20), 3..50).prop_map(|spec| build_tree(&spec))
}

fn query_strategy() -> impl Strategy<Value = String> {
    let step = prop_oneof![
        prop::sample::select(LABELS.to_vec()).prop_map(str::to_string),
        Just("*".to_string()),
    ];
    let qual = prop_oneof![
        Just(String::new()),
        prop::sample::select(LABELS.to_vec()).prop_map(|l| format!("[{l}]")),
        (prop::sample::select(LABELS.to_vec()), prop::sample::select(TEXTS.to_vec()))
            .prop_map(|(l, t)| format!("[{l}/text()=\"{t}\"]")),
        (prop::sample::select(LABELS.to_vec()), 0u32..50)
            .prop_map(|(l, n)| format!("[{l} >= {n}]")),
        prop::sample::select(LABELS.to_vec()).prop_map(|l| format!("[not({l})]")),
    ];
    (prop::bool::ANY, prop::collection::vec((step, qual), 1..4)).prop_map(|(desc, steps)| {
        let mut out = String::new();
        if desc {
            out.push_str("//");
        }
        for (i, (s, q)) in steps.iter().enumerate() {
            if i > 0 {
                out.push('/');
            }
            out.push_str(s);
            out.push_str(q);
        }
        out
    })
}

proptest! {
    #[test]
    fn display_round_trips_to_the_same_ast(query in query_strategy()) {
        let parsed = parse(&query).expect("generated queries are valid");
        let reparsed = parse(&parsed.to_string()).expect("display output parses");
        prop_assert_eq!(&parsed, &reparsed, "display round trip changed the AST for {}", query);
        // Normalization and compilation are deterministic and agree across
        // the round trip.
        let n1 = normalize(&parsed);
        let n2 = normalize(&reparsed);
        prop_assert_eq!(&n1, &n2);
        let c1 = compile(&n1).unwrap();
        let c2 = compile(&n2).unwrap();
        prop_assert_eq!(c1.svect_len(), c2.svect_len());
        prop_assert_eq!(c1.qvect_len(), c2.qvect_len());
    }

    #[test]
    fn compiled_vectors_stay_linear_in_the_query(query in query_strategy()) {
        let parsed = parse(&query).expect("generated queries are valid");
        let compiled = compile_text(&query).unwrap();
        // |SVect| + |QVect| = O(|Q|): allow a small constant factor.
        let budget = 4 * parsed.size() + 4;
        prop_assert!(
            compiled.svect_len() + compiled.qvect_len() <= budget,
            "vectors too large for {}: {} + {} > {}",
            query, compiled.svect_len(), compiled.qvect_len(), budget
        );
    }

    #[test]
    fn two_pass_evaluator_matches_the_oracle(
        tree in tree_strategy(),
        query in query_strategy(),
    ) {
        let mut oracle = semantics::oracle_eval(&tree, &query).unwrap();
        oracle.sort();
        let fast = centralized::evaluate(&tree, &query).unwrap();
        prop_assert_eq!(oracle, fast.answers, "disagreement on {}", query);
    }

    #[test]
    fn evaluation_cost_is_linear_in_tree_and_query(
        tree in tree_strategy(),
        query in query_strategy(),
    ) {
        let compiled = compile_text(&query).unwrap();
        let result = centralized::evaluate_compiled(&tree, &compiled);
        let nodes = tree.all_nodes().count() as u64;
        let per_node = compiled.per_node_ops() + 4;
        // O(|T|·|Q|) with a small constant (folding over children counts a
        // couple of extra operations per edge).
        prop_assert!(
            result.ops <= 4 * nodes * per_node,
            "ops {} exceed 4·|T|·|Q| = {}",
            result.ops, 4 * nodes * per_node
        );
    }
}

//! Generic evaluation passes over an XML (sub)tree.
//!
//! These are the tree-level building blocks shared by the centralized
//! evaluator and by the distributed algorithms (`paxml-core`):
//!
//! * [`qualifier_pass`] — the bottom-up Stage-1 pass (§3.1, the extended
//!   ParBoX): computes `QV`/`QDV` vectors for every node of a fragment,
//!   producing residual formulas at and above virtual nodes.
//! * [`selection_pass`] — the top-down Stage-2 pass (§3.2, Procedure
//!   `topDown`): computes `SV` vectors, classifies nodes into answers and
//!   candidate answers, and records the vectors to ship for each virtual
//!   node.
//! * [`combined_pass`] — the PaX2 single-traversal pass (§4): pre-order
//!   selection with placeholder variables for not-yet-known qualifier
//!   values, post-order qualifier computation, and a final local unification.
//!
//! All passes are generic over the variable type `V` so that the distributed
//! layer can use globally-unique variable names while the centralized
//! evaluator uses an uninhabited variable type (everything is constant).

use crate::compile::{CompiledQuery, QAxis, QEntry, QEntryId, SelItem};
use paxml_boolex::{Assignment, BoolExpr, FormulaVector, Substitution};
use paxml_xml::{NodeId, XmlTree};
use serde::{Deserialize, Serialize};
use std::hash::Hash;

/// Trait bound shorthand for formula variables.
pub trait VarLike: Clone + Eq + Ord + Hash {}
impl<T: Clone + Eq + Ord + Hash> VarLike for T {}

/// The pair of vectors a fragment publishes for its root and that a parent
/// fragment needs for each of its virtual nodes: the node's own `QV` vector
/// and its descendant-closure `QDV` vector.
///
/// The paper ships a triplet `(QV, QCV, QDV)`; our entry compilation only
/// ever consults a child's `QV` and `QDV`, so `QCV` (which is derivable as
/// the disjunction of the children's `QV`s) is omitted from messages. The
/// asymptotic communication bound `O(|Q|·|FT|)` is unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualVectors<V: Ord> {
    /// `QV` — the value of every `QVect` entry at the node.
    pub qv: FormulaVector<V>,
    /// `QDV` — for every entry, "true at the node or at some descendant".
    pub qdv: FormulaVector<V>,
}

impl<V: VarLike> QualVectors<V> {
    /// Vectors of the right length with every entry `false`.
    pub fn all_false(len: usize) -> Self {
        QualVectors { qv: FormulaVector::all_false(len), qdv: FormulaVector::all_false(len) }
    }

    /// Apply an assignment to both vectors.
    pub fn assign(&self, env: &Assignment<V>) -> Self {
        QualVectors { qv: self.qv.assign(env), qdv: self.qdv.assign(env) }
    }

    /// Apply a substitution to both vectors.
    pub fn substitute(&self, env: &Substitution<V>) -> Self {
        QualVectors { qv: self.qv.substitute(env), qdv: self.qdv.substitute(env) }
    }

    /// Are both vectors free of variables?
    pub fn is_fully_resolved(&self) -> bool {
        self.qv.is_fully_resolved() && self.qdv.is_fully_resolved()
    }
}

/// Result of the bottom-up qualifier pass over one subtree.
#[derive(Debug, Clone)]
pub struct QualifierPassOutput<V: Ord> {
    /// Per-node `QV` vectors, indexed by the node's arena index. Entries are
    /// `None` for nodes outside the evaluated subtree. Virtual nodes hold the
    /// vectors supplied by the `virtual_vectors` callback.
    pub node_qv: Vec<Option<FormulaVector<V>>>,
    /// The `QV`/`QDV` vectors of the subtree root — what a fragment sends to
    /// the coordinator at the end of Stage 1.
    pub root: QualVectors<V>,
    /// Number of elementary operations performed (nodes × vector entries),
    /// the paper's unit of computation cost.
    pub ops: u64,
}

/// Evaluate every `QVect` entry at every node of the subtree rooted at
/// `root`, bottom-up, in a single pass.
///
/// `virtual_vectors` supplies, for every virtual node encountered, the
/// `QV`/`QDV` vectors standing for the missing sub-fragment's root — fresh
/// variables during distributed Stage 1, resolved constants during Stage 2.
pub fn qualifier_pass<V: VarLike>(
    tree: &XmlTree,
    root: NodeId,
    query: &CompiledQuery,
    mut virtual_vectors: impl FnMut(NodeId) -> QualVectors<V>,
) -> QualifierPassOutput<V> {
    let qlen = query.qvect_len();
    let mut node_qv: Vec<Option<FormulaVector<V>>> = vec![None; tree.node_count()];
    let mut node_qdv: Vec<Option<FormulaVector<V>>> = vec![None; tree.node_count()];
    let mut ops: u64 = 0;

    for v in tree.post_order(root) {
        if tree.is_virtual(v) {
            let vectors = virtual_vectors(v);
            debug_assert_eq!(vectors.qv.len(), qlen);
            node_qv[v.index()] = Some(vectors.qv);
            node_qdv[v.index()] = Some(vectors.qdv);
            ops += qlen as u64;
            continue;
        }

        // Fold the children's vectors into "some child has entry i true"
        // (the paper's QCV) and "some child's subtree has entry i true".
        let mut child_any_qv: FormulaVector<V> = FormulaVector::all_false(qlen);
        let mut child_any_qdv: FormulaVector<V> = FormulaVector::all_false(qlen);
        for c in tree.children(v) {
            let cqv = node_qv[c.index()].as_ref().expect("children processed before parent");
            let cqdv = node_qdv[c.index()].as_ref().expect("children processed before parent");
            for i in 0..qlen {
                child_any_qv.set(i, BoolExpr::or(child_any_qv[i].clone(), cqv[i].clone()));
                child_any_qdv.set(i, BoolExpr::or(child_any_qdv[i].clone(), cqdv[i].clone()));
                ops += 2;
            }
        }

        let mut qv: FormulaVector<V> = FormulaVector::all_false(qlen);
        for (i, entry) in query.qvect.iter().enumerate() {
            let value = eval_qentry(tree, v, entry, &qv, &child_any_qv, &child_any_qdv);
            qv.set(i, value);
            ops += 1;
        }

        // QDV_v(i) = QV_v(i) ∨ (some child's QDV has i).
        let mut qdv: FormulaVector<V> = FormulaVector::all_false(qlen);
        for i in 0..qlen {
            qdv.set(i, BoolExpr::or(qv[i].clone(), child_any_qdv[i].clone()));
            ops += 1;
        }

        node_qv[v.index()] = Some(qv);
        node_qdv[v.index()] = Some(qdv);
    }

    let root_qv = node_qv[root.index()].clone().unwrap_or_else(|| FormulaVector::all_false(qlen));
    let root_qdv = node_qdv[root.index()].clone().unwrap_or_else(|| FormulaVector::all_false(qlen));
    QualifierPassOutput { node_qv, root: QualVectors { qv: root_qv, qdv: root_qdv }, ops }
}

/// Evaluate one `QVect` entry at a node, given the already-computed earlier
/// entries at the same node (`qv_so_far`) and the folded child vectors.
fn eval_qentry<V: VarLike>(
    tree: &XmlTree,
    v: NodeId,
    entry: &QEntry,
    qv_so_far: &FormulaVector<V>,
    child_any_qv: &FormulaVector<V>,
    child_any_qdv: &FormulaVector<V>,
) -> BoolExpr<V> {
    match entry {
        QEntry::LabelTest(label) => BoolExpr::constant(tree.label(v) == Some(label.as_str())),
        QEntry::ElementTest => BoolExpr::constant(tree.is_element(v)),
        QEntry::TextTest(s) => BoolExpr::constant(tree.text_value(v) == Some(s.as_str())),
        QEntry::ValTest(op, n) => {
            let holds = tree
                .text_value(v)
                .and_then(|t| {
                    let t = t.trim();
                    let t = t.strip_prefix('$').unwrap_or(t);
                    t.parse::<f64>().ok()
                })
                .map(|value| op.apply(value, *n))
                .unwrap_or(false);
            BoolExpr::constant(holds)
        }
        QEntry::Step { test, quals, next } => {
            let mut conjuncts = vec![qv_so_far[*test].clone()];
            for q in quals {
                conjuncts.push(qv_so_far[*q].clone());
            }
            match next {
                None => {}
                Some((QAxis::Child, e)) => conjuncts.push(child_any_qv[*e].clone()),
                Some((QAxis::Descendant, e)) => conjuncts.push(child_any_qdv[*e].clone()),
            }
            BoolExpr::and_all(conjuncts)
        }
        QEntry::Exists { axis, entry } => match axis {
            QAxis::Child => child_any_qv[*entry].clone(),
            QAxis::Descendant => child_any_qdv[*entry].clone(),
        },
        QEntry::Not(e) => BoolExpr::not(qv_so_far[*e].clone()),
        QEntry::And(es) => BoolExpr::and_all(es.iter().map(|e| qv_so_far[*e].clone())),
        QEntry::Or(es) => BoolExpr::or_all(es.iter().map(|e| qv_so_far[*e].clone())),
    }
}

/// The initial `SV` vector for evaluating a query at the *global* root of a
/// tree: the vector of the implicit document node sitting above the root
/// element.
///
/// * entry 0 (the empty prefix) is true exactly when the query is absolute —
///   the document node is then the evaluation context;
/// * a run of *leading* `//` items inherits that truth (the document node is
///   in its own descendant-or-self closure), so that absolute queries such as
///   `//broker/name` can match starting at the root element;
/// * every other entry is false.
///
/// For a relative query the context is the root element itself; pass the
/// root as the `context` argument of [`selection_pass`] (see
/// [`evaluation_context`]).
pub fn root_context_vector<V: VarLike>(query: &CompiledQuery) -> FormulaVector<V> {
    let mut sv = FormulaVector::all_false(query.svect_len());
    if query.absolute {
        sv.set(0, BoolExpr::constant(true));
        for (idx, item) in query.sel_items.iter().enumerate() {
            match item {
                SelItem::DescendantOrSelf => {
                    let prev = sv[idx].clone();
                    sv.set(idx + 1, prev);
                }
                _ => break,
            }
        }
    }
    sv
}

/// The node whose empty-prefix entry is true when evaluating at the global
/// root: the root element for relative queries, nothing for absolute ones.
pub fn evaluation_context(query: &CompiledQuery, root: NodeId) -> Option<NodeId> {
    if query.absolute {
        None
    } else {
        Some(root)
    }
}

/// Result of the top-down selection pass over one subtree.
#[derive(Debug, Clone)]
pub struct SelectionPassOutput<V: Ord> {
    /// Nodes whose membership in the answer is already certain.
    pub answers: Vec<NodeId>,
    /// Candidate answers: nodes whose membership depends on the residual
    /// formula (over ancestor-summary and qualifier variables).
    pub candidates: Vec<(NodeId, BoolExpr<V>)>,
    /// For every virtual node: the ancestor-summary `SV` vector that the
    /// corresponding sub-fragment needs as its initial stack vector.
    pub virtual_vectors: Vec<(NodeId, FormulaVector<V>)>,
    /// Elementary operations performed.
    pub ops: u64,
}

/// Evaluate the selection path over the subtree rooted at `root`, top-down,
/// in a single pass (Procedure `topDown` of Fig. 4).
///
/// * `init` is the `SV` vector of the (possibly unknown) parent of `root`:
///   all-false-except-entry-0 for the global evaluation context, or a vector
///   of fresh variables for a non-root fragment.
/// * `context` is the node whose empty-prefix entry (entry 0) is true — the
///   global root element for relative queries, `None` otherwise.
/// * `qual_value(v, e)` returns the (constant or residual) truth value of
///   `QVect` entry `e` at node `v`, as established by Stage 1.
pub fn selection_pass<V: VarLike>(
    tree: &XmlTree,
    root: NodeId,
    query: &CompiledQuery,
    init: FormulaVector<V>,
    context: Option<NodeId>,
    qual_value: &mut impl FnMut(NodeId, QEntryId) -> BoolExpr<V>,
) -> SelectionPassOutput<V> {
    let slen = query.svect_len();
    debug_assert_eq!(init.len(), slen, "init vector must have |SVect| entries");
    let mut out = SelectionPassOutput {
        answers: Vec::new(),
        candidates: Vec::new(),
        virtual_vectors: Vec::new(),
        ops: 0,
    };

    // Explicit DFS stack carrying the parent's (summarised) SV vector.
    let mut stack: Vec<(NodeId, FormulaVector<V>)> = vec![(root, init)];
    while let Some((v, parent_sv)) = stack.pop() {
        if tree.is_virtual(v) {
            // The stack-top summarises everything known about the ancestors
            // of the missing fragment's root — exactly what that fragment
            // needs as its initial vector (§3.2, Example 3.4).
            out.virtual_vectors.push((v, parent_sv));
            out.ops += slen as u64;
            continue;
        }

        let sv = compute_sv(tree, v, query, &parent_sv, context, qual_value);
        out.ops += slen as u64;

        if tree.is_element(v) || query.sel_items.is_empty() {
            let last = sv.last();
            if last.is_true() {
                out.answers.push(v);
            } else if last.has_variables() {
                out.candidates.push((v, last.clone()));
            }
        }

        // Children inherit v's vector as their ancestor summary.
        let children: Vec<NodeId> = tree.children(v).collect();
        for c in children.into_iter().rev() {
            stack.push((c, sv.clone()));
        }
    }
    out
}

/// Compute the `SV` vector of a node from its parent's vector.
pub(crate) fn compute_sv<V: VarLike>(
    tree: &XmlTree,
    v: NodeId,
    query: &CompiledQuery,
    parent_sv: &FormulaVector<V>,
    context: Option<NodeId>,
    qual_value: &mut impl FnMut(NodeId, QEntryId) -> BoolExpr<V>,
) -> FormulaVector<V> {
    let slen = query.svect_len();
    let mut sv: FormulaVector<V> = FormulaVector::all_false(slen);
    // Entry 0: the empty prefix — true only at the evaluation context.
    sv.set(0, BoolExpr::constant(Some(v) == context));
    for (idx, item) in query.sel_items.iter().enumerate() {
        let i = idx + 1;
        let value = match item {
            SelItem::Label(l) => BoolExpr::and(
                parent_sv[i - 1].clone(),
                BoolExpr::constant(tree.label(v) == Some(l.as_str())),
            ),
            SelItem::Wildcard => {
                BoolExpr::and(parent_sv[i - 1].clone(), BoolExpr::constant(tree.is_element(v)))
            }
            SelItem::DescendantOrSelf => BoolExpr::or(parent_sv[i].clone(), sv[i - 1].clone()),
            SelItem::SelfQualifier(quals) => {
                let mut conjuncts = vec![sv[i - 1].clone()];
                for q in quals {
                    conjuncts.push(qual_value(v, *q));
                }
                BoolExpr::and_all(conjuncts)
            }
        };
        sv.set(i, value);
    }
    sv
}

/// Result of the PaX2 combined pass over one subtree.
#[derive(Debug, Clone)]
pub struct CombinedPassOutput<V: Ord> {
    /// Certain answers.
    pub answers: Vec<NodeId>,
    /// Candidate answers with their residual formulas (over ancestor-summary
    /// variables and the qualifier variables of virtual nodes).
    pub candidates: Vec<(NodeId, BoolExpr<V>)>,
    /// Ancestor-summary `SV` vector for every virtual node.
    pub virtual_vectors: Vec<(NodeId, FormulaVector<V>)>,
    /// Root `QV`/`QDV` vectors (as in Stage 1 of PaX3).
    pub root: QualVectors<V>,
    /// Elementary operations performed.
    pub ops: u64,
}

/// The PaX2 single-traversal pass (§4): one depth-first traversal that does
/// the pre-order selection computation and the post-order qualifier
/// computation, introducing placeholder variables (`local_var`) for the
/// qualifier values that are not yet known during pre-order and unifying
/// them once the node's subtree has been fully visited.
///
/// `local_var(v, e)` must mint a variable unique to the pair (node, entry);
/// the pass guarantees that no such variable survives in the output.
#[allow(clippy::too_many_arguments)]
pub fn combined_pass<V: VarLike>(
    tree: &XmlTree,
    root: NodeId,
    query: &CompiledQuery,
    init: FormulaVector<V>,
    context: Option<NodeId>,
    mut virtual_qual_vectors: impl FnMut(NodeId) -> QualVectors<V>,
    local_var: impl Fn(NodeId, QEntryId) -> V,
) -> CombinedPassOutput<V> {
    let qlen = query.qvect_len();
    let slen = query.svect_len();
    let mut ops: u64 = 0;

    // Only the qualifier entries referenced by the selection path ever get a
    // placeholder variable, so only those need a recorded value.
    let sel_qual_entries: Vec<QEntryId> = query
        .sel_items
        .iter()
        .filter_map(|item| match item {
            SelItem::SelfQualifier(ids) => Some(ids.clone()),
            _ => None,
        })
        .flatten()
        .collect();

    // --- single DFS -------------------------------------------------------
    // Pre-order: compute SV with placeholders for qualifier values.
    // Post-order: compute QV/QDV; record the values of the placeholders.
    let mut node_qv: Vec<Option<FormulaVector<V>>> = vec![None; tree.node_count()];
    let mut node_qdv: Vec<Option<FormulaVector<V>>> = vec![None; tree.node_count()];
    let mut pending_sv: Vec<(NodeId, BoolExpr<V>)> = Vec::new(); // last SV entry per interesting node
    let mut virtual_vectors: Vec<(NodeId, FormulaVector<V>)> = Vec::new();
    let mut local_values: Substitution<V> = Substitution::new();

    // DFS stack frames: (node, parent_sv, expanded?)
    enum Frame<V: Ord> {
        Enter(NodeId, FormulaVector<V>),
        Exit(NodeId),
    }
    let mut stack: Vec<Frame<V>> = vec![Frame::Enter(root, init)];

    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Enter(v, parent_sv) => {
                if tree.is_virtual(v) {
                    // Selection: ship the ancestor summary; qualifiers: use
                    // the fresh variables standing for the sub-fragment.
                    virtual_vectors.push((v, parent_sv));
                    let vectors = virtual_qual_vectors(v);
                    node_qv[v.index()] = Some(vectors.qv);
                    node_qdv[v.index()] = Some(vectors.qdv);
                    ops += (qlen + slen) as u64;
                    continue;
                }

                // Pre-order: SV with placeholder qualifier values.
                let mut placeholder = |node: NodeId, e: QEntryId| -> BoolExpr<V> {
                    BoolExpr::var(local_var(node, e))
                };
                let sv = compute_sv(tree, v, query, &parent_sv, context, &mut placeholder);
                ops += slen as u64;
                if tree.is_element(v) || query.sel_items.is_empty() {
                    let last = sv.last();
                    if !last.is_false() {
                        pending_sv.push((v, last.clone()));
                    }
                }

                stack.push(Frame::Exit(v));
                let children: Vec<NodeId> = tree.children(v).collect();
                for c in children.into_iter().rev() {
                    stack.push(Frame::Enter(c, sv.clone()));
                }
            }
            Frame::Exit(v) => {
                // Post-order: qualifier vectors, exactly as in qualifier_pass.
                let mut child_any_qv: FormulaVector<V> = FormulaVector::all_false(qlen);
                let mut child_any_qdv: FormulaVector<V> = FormulaVector::all_false(qlen);
                for c in tree.children(v) {
                    let cqv =
                        node_qv[c.index()].as_ref().expect("children processed before parent");
                    let cqdv =
                        node_qdv[c.index()].as_ref().expect("children processed before parent");
                    for i in 0..qlen {
                        child_any_qv.set(i, BoolExpr::or(child_any_qv[i].clone(), cqv[i].clone()));
                        child_any_qdv
                            .set(i, BoolExpr::or(child_any_qdv[i].clone(), cqdv[i].clone()));
                        ops += 2;
                    }
                }
                let mut qv: FormulaVector<V> = FormulaVector::all_false(qlen);
                for (i, entry) in query.qvect.iter().enumerate() {
                    let value = eval_qentry(tree, v, entry, &qv, &child_any_qv, &child_any_qdv);
                    qv.set(i, value);
                    ops += 1;
                }
                let mut qdv: FormulaVector<V> = FormulaVector::all_false(qlen);
                for i in 0..qlen {
                    qdv.set(i, BoolExpr::or(qv[i].clone(), child_any_qdv[i].clone()));
                    ops += 1;
                }
                // The placeholders minted for this node during pre-order can
                // now be unified with the freshly computed values (§4,
                // Example 4.2: qz₂ unifies with y₈).
                for &i in &sel_qual_entries {
                    local_values.set(local_var(v, i), qv[i].clone());
                }
                node_qv[v.index()] = Some(qv);
                node_qdv[v.index()] = Some(qdv);
            }
        }
    }

    // --- local unification -------------------------------------------------
    // Replace every placeholder with its computed value. Placeholder values
    // never mention other placeholders (they are formulas over the virtual
    // nodes' variables only), so a single substitution round suffices.
    let mut answers = Vec::new();
    let mut candidates = Vec::new();
    for (v, formula) in pending_sv {
        let resolved = formula.substitute(&local_values);
        ops += 1;
        if resolved.is_true() {
            answers.push(v);
        } else if resolved.has_variables() {
            candidates.push((v, resolved));
        }
    }
    let virtual_vectors: Vec<(NodeId, FormulaVector<V>)> = virtual_vectors
        .into_iter()
        .map(|(v, vec)| {
            ops += vec.len() as u64;
            (v, vec.substitute(&local_values))
        })
        .collect();

    let root_qv = node_qv[root.index()].clone().unwrap_or_else(|| FormulaVector::all_false(qlen));
    let root_qdv = node_qdv[root.index()].clone().unwrap_or_else(|| FormulaVector::all_false(qlen));

    CombinedPassOutput {
        answers,
        candidates,
        virtual_vectors,
        root: QualVectors { qv: root_qv, qdv: root_qdv },
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::normalize::normalize;
    use crate::parse;
    use paxml_xml::TreeBuilder;

    /// Variable type for tests that never introduce variables.
    type NoVar = u8;

    fn compiled(text: &str) -> CompiledQuery {
        compile(&normalize(&parse(text).unwrap())).unwrap()
    }

    fn clientele() -> paxml_xml::XmlTree {
        // A condensed version of Fig. 1 (single site, no fragmentation).
        TreeBuilder::new("clientele")
            .open("client")
            .leaf("name", "Anna")
            .leaf("country", "US")
            .open("broker")
            .leaf("name", "E*trade")
            .open("market")
            .leaf("name", "NASDAQ")
            .open("stock")
            .leaf("code", "GOOG")
            .leaf("buy", "$374")
            .leaf("qt", "40")
            .close()
            .close()
            .close()
            .close()
            .open("client")
            .leaf("name", "Lisa")
            .leaf("country", "Canada")
            .open("broker")
            .leaf("name", "CIBC")
            .open("market")
            .leaf("name", "TSE")
            .open("stock")
            .leaf("code", "GOOG")
            .leaf("buy", "$382")
            .leaf("qt", "90")
            .close()
            .close()
            .close()
            .close()
            .build()
    }

    #[test]
    fn qualifier_pass_computes_constants_on_unfragmented_tree() {
        let tree = clientele();
        let q = compiled(
            "client[country/text() = \"US\"]/broker[market/name/text() = \"NASDAQ\"]/name",
        );
        let out = qualifier_pass::<NoVar>(&tree, tree.root(), &q, |_| unreachable!());
        assert!(out.root.is_fully_resolved());
        assert!(out.ops > 0);
        // The US client node must satisfy the first qualifier, the Canadian
        // one must not. Qualifier 1 is the last entry of the first
        // SelfQualifier item.
        let clients = tree.find_all("client");
        let first_qual_entry = match &q.sel_items[1] {
            SelItem::SelfQualifier(ids) => ids[0],
            other => panic!("unexpected {other:?}"),
        };
        let us_val = out.node_qv[clients[0].index()].as_ref().unwrap()[first_qual_entry].clone();
        let ca_val = out.node_qv[clients[1].index()].as_ref().unwrap()[first_qual_entry].clone();
        assert!(us_val.is_true());
        assert!(ca_val.is_false());
    }

    #[test]
    fn selection_pass_finds_expected_answers() {
        let tree = clientele();
        let q = compiled(
            "client[country/text() = \"US\"]/broker[market/name/text() = \"NASDAQ\"]/name",
        );
        let quals = qualifier_pass::<NoVar>(&tree, tree.root(), &q, |_| unreachable!());
        let mut init = FormulaVector::all_false(q.svect_len());
        init.set(0, BoolExpr::constant(false));
        let mut qual_value =
            |v: NodeId, e: QEntryId| quals.node_qv[v.index()].as_ref().unwrap()[e].clone();
        let out = selection_pass::<NoVar>(
            &tree,
            tree.root(),
            &q,
            init,
            Some(tree.root()),
            &mut qual_value,
        );
        // Only the US client's broker name qualifies: "E*trade".
        assert_eq!(out.answers.len(), 1);
        assert_eq!(tree.text_of(out.answers[0]), Some("E*trade".to_string()));
        assert!(out.candidates.is_empty());
        assert!(out.virtual_vectors.is_empty());
    }

    #[test]
    fn combined_pass_matches_two_pass_result() {
        let tree = clientele();
        for text in [
            "client/name",
            "client[country/text() = \"US\"]/broker[market/name/text() = \"NASDAQ\"]/name",
            "//name",
            "//stock[buy/val() > 380]/code",
            "client[not(country/text() = \"US\")]/name",
        ] {
            let q = compiled(text);
            let quals = qualifier_pass::<u32>(&tree, tree.root(), &q, |_| unreachable!());
            let init = FormulaVector::all_false(q.svect_len());
            let mut qual_value =
                |v: NodeId, e: QEntryId| quals.node_qv[v.index()].as_ref().unwrap()[e].clone();
            let two_pass = selection_pass::<u32>(
                &tree,
                tree.root(),
                &q,
                init.clone(),
                Some(tree.root()),
                &mut qual_value,
            );
            let combined = combined_pass::<u32>(
                &tree,
                tree.root(),
                &q,
                init,
                Some(tree.root()),
                |_| unreachable!(),
                |v, e| (v.index() as u32) * 10_000 + e as u32,
            );
            let mut a = two_pass.answers.clone();
            let mut b = combined.answers.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "answers differ for {text}");
            assert!(combined.candidates.is_empty(), "no candidates expected for {text}");
        }
    }

    #[test]
    fn absolute_query_context_is_the_document_node() {
        let tree = clientele();
        let q = compiled("/clientele/client/name");
        let quals = qualifier_pass::<NoVar>(&tree, tree.root(), &q, |_| unreachable!());
        let init = root_context_vector(&q);
        assert!(init[0].is_true());
        let context = evaluation_context(&q, tree.root());
        assert_eq!(context, None);
        let mut qual_value =
            |v: NodeId, e: QEntryId| quals.node_qv[v.index()].as_ref().unwrap()[e].clone();
        let out = selection_pass::<NoVar>(&tree, tree.root(), &q, init, context, &mut qual_value);
        assert_eq!(out.answers.len(), 2); // both clients' name elements
    }

    #[test]
    fn descendant_axis_propagates_down() {
        let tree = clientele();
        let q = compiled("//code");
        let quals = qualifier_pass::<NoVar>(&tree, tree.root(), &q, |_| unreachable!());
        let init = root_context_vector(&q);
        // Leading `//` inherits the context truth so the root element can
        // already be inside the closure.
        assert!(init[1].is_true());
        let mut qual_value =
            |v: NodeId, e: QEntryId| quals.node_qv[v.index()].as_ref().unwrap()[e].clone();
        let out = selection_pass::<NoVar>(&tree, tree.root(), &q, init, None, &mut qual_value);
        assert_eq!(out.answers.len(), 2);
        for a in &out.answers {
            assert_eq!(tree.label(*a), Some("code"));
        }
    }

    #[test]
    fn variables_flow_through_selection_when_init_is_unknown() {
        // Simulate a non-root fragment: the init vector is all variables.
        let tree = TreeBuilder::new("broker").leaf("name", "Bache").build();
        let q = compiled("client/broker/name");
        let quals = qualifier_pass::<String>(&tree, tree.root(), &q, |_| unreachable!());
        let init = FormulaVector::fresh_variables(q.svect_len(), |i| format!("z{i}"));
        let mut qual_value =
            |v: NodeId, e: QEntryId| quals.node_qv[v.index()].as_ref().unwrap()[e].clone();
        let out = selection_pass::<String>(&tree, tree.root(), &q, init, None, &mut qual_value);
        // The name node is a *candidate*: it is an answer iff the unknown
        // ancestor prefix ends in a matched `client` (variable z1 of the
        // paper's Example 3.4; here the entry index is 1 for the client
        // prefix because entry 0 is the empty prefix).
        assert!(out.answers.is_empty());
        assert_eq!(out.candidates.len(), 1);
        let (node, formula) = &out.candidates[0];
        assert_eq!(tree.text_of(*node), Some("Bache".to_string()));
        assert_eq!(formula.variables().len(), 1);
        // Unifying the variable with "the parent prefix client/broker was
        // matched up to client" turns the candidate into an answer.
        let var = formula.variables().into_iter().next().unwrap();
        let mut env = Assignment::new();
        env.set(var, true);
        assert!(formula.assign(&env).is_true());
    }
}

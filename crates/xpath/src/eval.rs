//! Generic evaluation passes over an XML (sub)tree.
//!
//! These are the tree-level building blocks shared by the centralized
//! evaluator and by the distributed algorithms (`paxml-core`):
//!
//! * [`qualifier_pass`] — the bottom-up Stage-1 pass (§3.1, the extended
//!   ParBoX): computes `QV`/`QDV` vectors for every node of a fragment,
//!   producing residual formulas at and above virtual nodes.
//! * [`selection_pass`] — the top-down Stage-2 pass (§3.2, Procedure
//!   `topDown`): computes `SV` vectors, classifies nodes into answers and
//!   candidate answers, and records the vectors to ship for each virtual
//!   node.
//! * [`combined_pass`] — the PaX2 single-traversal pass (§4): pre-order
//!   selection with placeholder variables for not-yet-known qualifier
//!   values, post-order qualifier computation, and a final local unification.
//!
//! All passes are generic over the variable type `V` so that the distributed
//! layer can use globally-unique variable names while the centralized
//! evaluator uses an uninhabited variable type (everything is constant).
//!
//! # Vector representation
//!
//! The kernel keeps per-node vectors in a two-tier form. At every node that
//! is *not* adjacent to a virtual node, all entries are already known truth
//! values, so vectors stay as packed [`BitVector`]s: the child-fold loops
//! run word-wise (64 entries per AND/OR instruction) and the constant path
//! performs **zero heap allocations per entry**. Only once a virtual node's
//! fresh variables flow into a vector does it switch to per-entry formulas —
//! and those formulas live as interned [`ExprId`]s in a pass-local
//! [`FormulaArena`], so combining, assigning and locally unifying the
//! `O(k)` residual formulas never clones a subtree. Pass outputs are
//! exported as [`CompactVector`]s (bits for fully-constant vectors,
//! self-contained [`BoolExpr`] trees otherwise), which is also the wire
//! format: a variable-free leaf fragment ships `⌈len/64⌉` words per vector.

use crate::compile::{CompiledQuery, PosFilter, QAxis, QEntry, QEntryId, SelItem};
use paxml_boolex::{BitVector, BoolExpr, CompactVector, ExprId, FormulaArena};
use paxml_xml::{NodeId, XmlTree};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// Trait bound shorthand for formula variables.
pub trait VarLike: Clone + Eq + Ord + Hash {}
impl<T: Clone + Eq + Ord + Hash> VarLike for T {}

/// The kernel's working vector: packed bits until a variable is introduced,
/// interned formula ids afterwards. Cloning either arm copies a flat `Vec`
/// of machine words — never a formula tree.
#[derive(Debug, Clone)]
enum AVec {
    /// Every entry is a known constant.
    Bits(BitVector),
    /// At least one entry is symbolic; entries are ids into the pass arena.
    Ids(Vec<ExprId>),
}

impl AVec {
    fn all_false(len: usize) -> AVec {
        AVec::Bits(BitVector::all_false(len))
    }

    fn len(&self) -> usize {
        match self {
            AVec::Bits(b) => b.len(),
            AVec::Ids(v) => v.len(),
        }
    }

    /// The entry as an arena id (constants use the two fixed ids).
    fn id(&self, index: usize) -> ExprId {
        match self {
            AVec::Bits(b) => ExprId::of_const(b.get(index)),
            AVec::Ids(v) => v[index],
        }
    }

    /// Overwrite an entry, promoting to the ids arm when a symbolic id
    /// lands in a bits vector.
    fn set(&mut self, index: usize, id: ExprId) {
        match self {
            AVec::Bits(b) => match id.as_const() {
                Some(v) => b.set(index, v),
                None => {
                    let mut ids: Vec<ExprId> = b.iter().map(ExprId::of_const).collect();
                    ids[index] = id;
                    *self = AVec::Ids(ids);
                }
            },
            AVec::Ids(v) => v[index] = id,
        }
    }

    /// `self[i] |= other[i]` for every entry — word-wise when both sides
    /// are constant, which is the overwhelmingly common case.
    fn or_into<V: VarLike>(&mut self, other: &AVec, arena: &mut FormulaArena<V>) {
        if let (AVec::Bits(a), AVec::Bits(b)) = (&mut *self, other) {
            a.or_assign(b);
            return;
        }
        for i in 0..self.len() {
            let id = arena.or(self.id(i), other.id(i));
            self.set(i, id);
        }
    }

    /// Import a wire-format vector into the pass arena.
    fn from_compact<V: VarLike>(vector: &CompactVector<V>, arena: &mut FormulaArena<V>) -> AVec {
        match vector {
            CompactVector::Bits(b) => AVec::Bits(b.clone()),
            CompactVector::Formulas(f) => AVec::Ids(f.iter().map(|e| arena.from_expr(e)).collect()),
        }
    }

    /// Export to the wire format (bits move without conversion; formulas
    /// are materialized as self-contained trees).
    fn into_compact<V: VarLike>(self, arena: &FormulaArena<V>) -> CompactVector<V> {
        match self {
            AVec::Bits(b) => CompactVector::Bits(b),
            AVec::Ids(ids) => {
                CompactVector::from_exprs(ids.iter().map(|&id| arena.to_expr(id)).collect())
            }
        }
    }

    /// A copy of the vector with constant entries (positional facts)
    /// appended at the end.
    fn extended_with(&self, facts: &[bool]) -> AVec {
        if facts.is_empty() {
            return self.clone();
        }
        match self {
            AVec::Bits(b) => {
                let bools: Vec<bool> = b.iter().chain(facts.iter().copied()).collect();
                AVec::Bits(BitVector::from_bools(&bools))
            }
            AVec::Ids(v) => {
                let mut ids = v.clone();
                ids.extend(facts.iter().map(|&f| ExprId::of_const(f)));
                AVec::Ids(ids)
            }
        }
    }
}

/// For each child, whether it sits at an accepted position among the
/// test-matching children of this parent. Children that do not match the
/// filter's node test (text nodes in particular) are always `false`; virtual
/// placeholders count through their recorded root label.
pub(crate) fn position_accept_mask(
    tree: &XmlTree,
    children: &[NodeId],
    filter: &PosFilter,
) -> Vec<bool> {
    let total = if filter.needs_total() {
        children.iter().filter(|c| filter.test.matches(tree.step_label(**c))).count() as u32
    } else {
        0
    };
    let mut index = 0u32;
    children
        .iter()
        .map(|c| {
            if filter.test.matches(tree.step_label(*c)) {
                index += 1;
                filter.accepts(index, total)
            } else {
                false
            }
        })
        .collect()
}

/// Positional-fact rows for every child of a node: `rows[k][j]` is fact `j`
/// of `query.sel_positions` at the `k`-th child. Empty when the query has no
/// positional predicates.
fn child_fact_rows(tree: &XmlTree, children: &[NodeId], query: &CompiledQuery) -> Vec<Vec<bool>> {
    if query.sel_positions.is_empty() {
        return Vec::new();
    }
    let masks: Vec<Vec<bool>> = query
        .sel_positions
        .iter()
        .map(|sp| position_accept_mask(tree, children, &sp.filter))
        .collect();
    (0..children.len()).map(|k| masks.iter().map(|m| m[k]).collect()).collect()
}

/// The pair of vectors a fragment publishes for its root and that a parent
/// fragment needs for each of its virtual nodes: the node's own `QV` vector
/// and its descendant-closure `QDV` vector.
///
/// The paper ships a triplet `(QV, QCV, QDV)`; our entry compilation only
/// ever consults a child's `QV` and `QDV`, so `QCV` (which is derivable as
/// the disjunction of the children's `QV`s) is omitted from messages. The
/// asymptotic communication bound `O(|Q|·|FT|)` is unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualVectors<V: Ord> {
    /// `QV` — the value of every `QVect` entry at the node.
    pub qv: CompactVector<V>,
    /// `QDV` — for every entry, "true at the node or at some descendant".
    pub qdv: CompactVector<V>,
}

impl<V: VarLike> QualVectors<V> {
    /// Vectors of the right length with every entry `false`.
    pub fn all_false(len: usize) -> Self {
        QualVectors { qv: CompactVector::all_false(len), qdv: CompactVector::all_false(len) }
    }

    /// Apply a partial truth-value lookup to both vectors.
    pub fn assign_with(&self, lookup: &impl Fn(&V) -> Option<bool>) -> Self {
        QualVectors { qv: self.qv.assign_with(lookup), qdv: self.qdv.assign_with(lookup) }
    }

    /// Apply an assignment to both vectors.
    pub fn assign(&self, env: &paxml_boolex::Assignment<V>) -> Self {
        self.assign_with(&|v| env.get(v))
    }

    /// Are both vectors free of variables?
    pub fn is_fully_resolved(&self) -> bool {
        self.qv.is_fully_resolved() && self.qdv.is_fully_resolved()
    }
}

/// Result of the bottom-up qualifier pass over one subtree.
#[derive(Debug, Clone)]
pub struct QualifierPassOutput<V: Ord> {
    /// Per-node `QV` vectors, indexed by the node's arena index. Entries are
    /// `None` for nodes outside the evaluated subtree. Virtual nodes hold the
    /// vectors supplied by the `virtual_vectors` callback.
    pub node_qv: Vec<Option<CompactVector<V>>>,
    /// The `QV`/`QDV` vectors of the subtree root — what a fragment sends to
    /// the coordinator at the end of Stage 1.
    pub root: QualVectors<V>,
    /// Number of elementary operations performed (nodes × vector entries),
    /// the paper's unit of computation cost.
    pub ops: u64,
}

/// Evaluate every `QVect` entry at every node of the subtree rooted at
/// `root`, bottom-up, in a single pass.
///
/// `virtual_vectors` supplies, for every virtual node encountered, the
/// `QV`/`QDV` vectors standing for the missing sub-fragment's root — fresh
/// variables during distributed Stage 1, resolved constants during Stage 2.
pub fn qualifier_pass<V: VarLike>(
    tree: &XmlTree,
    root: NodeId,
    query: &CompiledQuery,
    mut virtual_vectors: impl FnMut(NodeId) -> QualVectors<V>,
) -> QualifierPassOutput<V> {
    let qlen = query.qvect_len();
    let mut arena: FormulaArena<V> = FormulaArena::new();
    let mut node_qv: Vec<Option<AVec>> = vec![None; tree.node_count()];
    let mut node_qdv: Vec<Option<AVec>> = vec![None; tree.node_count()];
    let mut ops: u64 = 0;

    for v in tree.post_order(root) {
        if tree.is_virtual(v) {
            let vectors = virtual_vectors(v);
            debug_assert_eq!(vectors.qv.len(), qlen);
            node_qv[v.index()] = Some(AVec::from_compact(&vectors.qv, &mut arena));
            node_qdv[v.index()] = Some(AVec::from_compact(&vectors.qdv, &mut arena));
            ops += qlen as u64;
            continue;
        }

        // Fold the children's vectors into "some child has entry i true"
        // (the paper's QCV) and "some child's subtree has entry i true".
        let mut child_any_qv = AVec::all_false(qlen);
        let mut child_any_qdv = AVec::all_false(qlen);
        for c in tree.children(v) {
            let cqv = node_qv[c.index()].as_ref().expect("children processed before parent");
            let cqdv = node_qdv[c.index()].as_ref().expect("children processed before parent");
            child_any_qv.or_into(cqv, &mut arena);
            child_any_qdv.or_into(cqdv, &mut arena);
            ops += 2 * qlen as u64;
        }

        let mut qv = AVec::all_false(qlen);
        for (i, entry) in query.qvect.iter().enumerate() {
            let value = eval_qentry(
                &mut arena,
                tree,
                v,
                entry,
                &qv,
                &child_any_qv,
                &child_any_qdv,
                &node_qv,
            );
            qv.set(i, value);
            ops += 1;
        }

        // QDV_v(i) = QV_v(i) ∨ (some child's QDV has i).
        let mut qdv = child_any_qdv;
        qdv.or_into(&qv, &mut arena);
        ops += qlen as u64;

        node_qv[v.index()] = Some(qv);
        node_qdv[v.index()] = Some(qdv);
    }

    let root_qv = node_qv[root.index()].clone().unwrap_or_else(|| AVec::all_false(qlen));
    let root_qdv = node_qdv[root.index()].clone().unwrap_or_else(|| AVec::all_false(qlen));
    let root = QualVectors { qv: root_qv.into_compact(&arena), qdv: root_qdv.into_compact(&arena) };
    let node_qv: Vec<Option<CompactVector<V>>> =
        node_qv.into_iter().map(|av| av.map(|av| av.into_compact(&arena))).collect();
    QualifierPassOutput { node_qv, root, ops }
}

/// Evaluate one `QVect` entry at a node, given the already-computed earlier
/// entries at the same node (`qv_so_far`) and the folded child vectors. On
/// the constant path this is pure integer work — no allocation at all.
///
/// `node_qv` gives access to the individual children's `QV` vectors; it is
/// only consulted for positionally-filtered child steps, where the plain
/// disjunctive fold is not enough (only the children at accepted sibling
/// positions may witness the step).
#[allow(clippy::too_many_arguments)]
fn eval_qentry<V: VarLike>(
    arena: &mut FormulaArena<V>,
    tree: &XmlTree,
    v: NodeId,
    entry: &QEntry,
    qv_so_far: &AVec,
    child_any_qv: &AVec,
    child_any_qdv: &AVec,
    node_qv: &[Option<AVec>],
) -> ExprId {
    // Counted child-fold: OR of `entry` over the children sitting at
    // positions accepted by `filter`.
    let counted_fold = |arena: &mut FormulaArena<V>, e: QEntryId, filter: &PosFilter| {
        let children: Vec<NodeId> = tree.children(v).collect();
        let mask = position_accept_mask(tree, &children, filter);
        arena.or_all(children.iter().zip(mask).filter(|(_, ok)| *ok).map(|(c, _)| {
            node_qv[c.index()].as_ref().expect("children processed before parent").id(e)
        }))
    };
    match entry {
        QEntry::LabelTest(label) => ExprId::of_const(tree.label(v) == Some(label.as_str())),
        QEntry::ElementTest => ExprId::of_const(tree.is_element(v)),
        QEntry::TextTest(s) => ExprId::of_const(tree.text_value(v) == Some(s.as_str())),
        QEntry::ValTest(op, n) => {
            let holds = tree
                .text_value(v)
                .and_then(|t| {
                    let t = t.trim();
                    let t = t.strip_prefix('$').unwrap_or(t);
                    t.parse::<f64>().ok()
                })
                .map(|value| op.apply(value, *n))
                .unwrap_or(false);
            ExprId::of_const(holds)
        }
        QEntry::AttrTest(a) => ExprId::of_const(tree.attribute(v, a).is_some()),
        QEntry::AttrValueTest(a, s) => ExprId::of_const(tree.attribute(v, a) == Some(s.as_str())),
        QEntry::AttrCmpTest(a, op, n) => {
            let holds = tree
                .attribute(v, a)
                .and_then(|t| {
                    let t = t.trim();
                    let t = t.strip_prefix('$').unwrap_or(t);
                    t.parse::<f64>().ok()
                })
                .map(|value| op.apply(value, *n))
                .unwrap_or(false);
            ExprId::of_const(holds)
        }
        QEntry::Step { test, quals, next, next_pos } => {
            let next_id = match (next, next_pos) {
                (None, _) => None,
                (Some((QAxis::Child, e)), Some(filter)) => Some(counted_fold(arena, *e, filter)),
                (Some((QAxis::Child, e)), None) => Some(child_any_qv.id(*e)),
                (Some((QAxis::Descendant, e)), _) => Some(child_any_qdv.id(*e)),
            };
            // One n-ary conjunction: no intermediate `And` node is interned
            // for the prefix of a longer conjunct list (and on the constant
            // path `and_all` folds without touching the arena at all).
            arena.and_all(
                std::iter::once(qv_so_far.id(*test))
                    .chain(quals.iter().map(|q| qv_so_far.id(*q)))
                    .chain(next_id),
            )
        }
        QEntry::Exists { axis, entry, pos } => match (axis, pos) {
            (QAxis::Child, Some(filter)) => counted_fold(arena, *entry, filter),
            (QAxis::Child, None) => child_any_qv.id(*entry),
            (QAxis::Descendant, _) => child_any_qdv.id(*entry),
        },
        QEntry::Not(e) => {
            let inner = qv_so_far.id(*e);
            arena.not(inner)
        }
        QEntry::And(es) => arena.and_all(es.iter().map(|e| qv_so_far.id(*e))),
        QEntry::Or(es) => arena.or_all(es.iter().map(|e| qv_so_far.id(*e))),
    }
}

/// The initial `SV` vector for evaluating a query at the *global* root of a
/// tree: the vector of the implicit document node sitting above the root
/// element.
///
/// * entry 0 (the empty prefix) is true exactly when the query is absolute —
///   the document node is then the evaluation context;
/// * a run of *leading* `//` items inherits that truth (the document node is
///   in its own descendant-or-self closure), so that absolute queries such as
///   `//broker/name` can match starting at the root element;
/// * every other entry is false.
///
/// For a relative query the context is the root element itself; pass the
/// root as the `context` argument of [`selection_pass`] (see
/// [`evaluation_context`]).
pub fn root_context_vector(query: &CompiledQuery) -> Vec<bool> {
    let mut sv = vec![false; query.svect_len()];
    if query.absolute {
        sv[0] = true;
        for (idx, item) in query.sel_items.iter().enumerate() {
            match item {
                SelItem::DescendantOrSelf => sv[idx + 1] = sv[idx],
                _ => break,
            }
        }
    }
    sv
}

/// The full initial *carried* vector for evaluating at the global root of a
/// tree whose root element carries `root_label`: the [`root_context_vector`]
/// followed by the root element's positional facts. The root element is the
/// only child of the implicit document node, so each fact is "index 1 of 1
/// accepted, provided the root's label matches the counted test".
///
/// Equal to [`root_context_vector`] when the query has no positional
/// predicates; this is what every driver must feed to [`selection_pass`] /
/// [`combined_pass`] for the root fragment.
pub fn initial_vector(query: &CompiledQuery, root_label: &str) -> Vec<bool> {
    let mut v = root_context_vector(query);
    for sp in &query.sel_positions {
        let matches = sp.filter.test.matches(Some(root_label));
        v.push(matches && sp.filter.accepts(1, 1));
    }
    v
}

/// The node whose empty-prefix entry is true when evaluating at the global
/// root: the root element for relative queries, nothing for absolute ones.
pub fn evaluation_context(query: &CompiledQuery, root: NodeId) -> Option<NodeId> {
    if query.absolute {
        None
    } else {
        Some(root)
    }
}

/// Result of the top-down selection pass over one subtree.
#[derive(Debug, Clone)]
pub struct SelectionPassOutput<V: Ord> {
    /// Nodes whose membership in the answer is already certain.
    pub answers: Vec<NodeId>,
    /// Candidate answers: nodes whose membership depends on the residual
    /// formula (over ancestor-summary and qualifier variables).
    pub candidates: Vec<(NodeId, BoolExpr<V>)>,
    /// For every virtual node: the ancestor-summary `SV` vector that the
    /// corresponding sub-fragment needs as its initial stack vector.
    pub virtual_vectors: Vec<(NodeId, CompactVector<V>)>,
    /// Elementary operations performed.
    pub ops: u64,
}

/// Evaluate the selection path over the subtree rooted at `root`, top-down,
/// in a single pass (Procedure `topDown` of Fig. 4).
///
/// * `init` is the `SV` vector of the (possibly unknown) parent of `root`:
///   all-false-except-entry-0 for the global evaluation context, or a vector
///   of fresh variables for a non-root fragment.
/// * `context` is the node whose empty-prefix entry (entry 0) is true — the
///   global root element for relative queries, `None` otherwise.
/// * `qual_value(v, e)` returns the (constant or residual) truth value of
///   `QVect` entry `e` at node `v`, as established by Stage 1.
pub fn selection_pass<V: VarLike>(
    tree: &XmlTree,
    root: NodeId,
    query: &CompiledQuery,
    init: CompactVector<V>,
    context: Option<NodeId>,
    qual_value: &mut impl FnMut(NodeId, QEntryId) -> BoolExpr<V>,
) -> SelectionPassOutput<V> {
    let slen = query.svect_len();
    debug_assert_eq!(
        init.len(),
        query.init_len(),
        "init vector must have |SVect| + |positions| entries"
    );
    let mut arena: FormulaArena<V> = FormulaArena::new();
    let mut out = SelectionPassOutput {
        answers: Vec::new(),
        candidates: Vec::new(),
        virtual_vectors: Vec::new(),
        ops: 0,
    };
    let mut qual_id = |arena: &mut FormulaArena<V>, v: NodeId, e: QEntryId| -> ExprId {
        arena.from_expr(&qual_value(v, e))
    };

    // Explicit DFS stack carrying the parent's (summarised) SV vector plus,
    // when the query has positional predicates, the node's own positional
    // facts (entries slen..slen+P, computed by the parent while pushing).
    let init = AVec::from_compact(&init, &mut arena);
    let mut stack: Vec<(NodeId, AVec)> = vec![(root, init)];
    while let Some((v, carried)) = stack.pop() {
        if tree.is_virtual(v) {
            // The stack-top summarises everything known about the ancestors
            // of the missing fragment's root (and the root's own positional
            // facts) — exactly what that fragment needs as its initial
            // vector (§3.2, Example 3.4).
            out.virtual_vectors.push((v, carried.into_compact(&arena)));
            out.ops += slen as u64;
            continue;
        }

        let sv = compute_sv(&mut arena, tree, v, query, &carried, context, &mut qual_id);
        out.ops += slen as u64;

        if tree.is_element(v) || query.sel_items.is_empty() {
            let last = sv.id(slen - 1);
            if last == ExprId::TRUE {
                out.answers.push(v);
            } else if !last.is_const() {
                out.candidates.push((v, arena.to_expr(last)));
            }
        }

        // Children inherit v's vector as their ancestor summary, extended
        // with their own positional facts (all children of v are locally
        // present, so v can count them — including virtual placeholders,
        // whose recorded root label stands in for the missing root).
        let children: Vec<NodeId> = tree.children(v).collect();
        if query.sel_positions.is_empty() {
            for c in children.into_iter().rev() {
                stack.push((c, sv.clone()));
            }
        } else {
            let rows = child_fact_rows(tree, &children, query);
            out.ops += (children.len() * query.sel_positions.len()) as u64;
            for (k, c) in children.iter().enumerate().rev() {
                stack.push((*c, sv.extended_with(&rows[k])));
            }
        }
    }
    out
}

/// Compute the `SV` vector of a node from its carried vector (the parent's
/// `SV` entries followed by this node's positional facts). The result has
/// `svect_len` entries — the caller appends the children's facts when
/// pushing them.
fn compute_sv<V: VarLike>(
    arena: &mut FormulaArena<V>,
    tree: &XmlTree,
    v: NodeId,
    query: &CompiledQuery,
    carried: &AVec,
    context: Option<NodeId>,
    qual_id: &mut impl FnMut(&mut FormulaArena<V>, NodeId, QEntryId) -> ExprId,
) -> AVec {
    let slen = query.svect_len();
    let mut sv = AVec::all_false(slen);
    // Entry 0: the empty prefix — true only at the evaluation context.
    sv.set(0, ExprId::of_const(Some(v) == context));
    for (idx, item) in query.sel_items.iter().enumerate() {
        let i = idx + 1;
        let mut value = match item {
            SelItem::Label(l) => {
                if tree.label(v) == Some(l.as_str()) {
                    carried.id(i - 1)
                } else {
                    ExprId::FALSE
                }
            }
            SelItem::Wildcard => {
                if tree.is_element(v) {
                    carried.id(i - 1)
                } else {
                    ExprId::FALSE
                }
            }
            SelItem::DescendantOrSelf => arena.or(carried.id(i), sv.id(i - 1)),
            SelItem::SelfQualifier(quals) => {
                let mut acc = sv.id(i - 1);
                for q in quals {
                    if acc == ExprId::FALSE {
                        break;
                    }
                    let qid = qual_id(arena, v, *q);
                    acc = arena.and(acc, qid);
                }
                acc
            }
        };
        // AND in this node's positional facts for the step, straight from
        // the carried tail (entries slen..slen+P).
        if !query.sel_positions.is_empty() && matches!(item, SelItem::Label(_) | SelItem::Wildcard)
        {
            for (j, sp) in query.sel_positions.iter().enumerate() {
                if sp.item == idx && value != ExprId::FALSE {
                    let fact = carried.id(slen + j);
                    value = arena.and(value, fact);
                }
            }
        }
        sv.set(i, value);
    }
    sv
}

/// Result of the PaX2 combined pass over one subtree.
#[derive(Debug, Clone)]
pub struct CombinedPassOutput<V: Ord> {
    /// Certain answers.
    pub answers: Vec<NodeId>,
    /// Candidate answers with their residual formulas (over ancestor-summary
    /// variables and the qualifier variables of virtual nodes).
    pub candidates: Vec<(NodeId, BoolExpr<V>)>,
    /// Ancestor-summary `SV` vector for every virtual node.
    pub virtual_vectors: Vec<(NodeId, CompactVector<V>)>,
    /// Root `QV`/`QDV` vectors (as in Stage 1 of PaX3).
    pub root: QualVectors<V>,
    /// Elementary operations performed.
    pub ops: u64,
}

/// The PaX2 single-traversal pass (§4): one depth-first traversal that does
/// the pre-order selection computation and the post-order qualifier
/// computation, introducing placeholder variables (`local_var`) for the
/// qualifier values that are not yet known during pre-order and unifying
/// them once the node's subtree has been fully visited.
///
/// `local_var(v, e)` must mint a variable unique to the pair (node, entry);
/// the pass guarantees that no such variable survives in the output.
pub fn combined_pass<V: VarLike>(
    tree: &XmlTree,
    root: NodeId,
    query: &CompiledQuery,
    init: CompactVector<V>,
    context: Option<NodeId>,
    mut virtual_qual_vectors: impl FnMut(NodeId) -> QualVectors<V>,
    local_var: impl Fn(NodeId, QEntryId) -> V,
) -> CombinedPassOutput<V> {
    let qlen = query.qvect_len();
    let slen = query.svect_len();
    debug_assert_eq!(
        init.len(),
        query.init_len(),
        "init vector must have |SVect| + |positions| entries"
    );
    let mut arena: FormulaArena<V> = FormulaArena::new();
    let mut ops: u64 = 0;

    // Only the qualifier entries referenced by the selection path ever get a
    // placeholder variable, so only those need a recorded value.
    let sel_qual_entries: Vec<QEntryId> = query
        .sel_items
        .iter()
        .filter_map(|item| match item {
            SelItem::SelfQualifier(ids) => Some(ids.clone()),
            _ => None,
        })
        .flatten()
        .collect();

    // --- single DFS -------------------------------------------------------
    // Pre-order: compute SV with placeholders for qualifier values.
    // Post-order: compute QV/QDV; record the values of the placeholders.
    let mut node_qv: Vec<Option<AVec>> = vec![None; tree.node_count()];
    let mut node_qdv: Vec<Option<AVec>> = vec![None; tree.node_count()];
    let mut pending_sv: Vec<(NodeId, ExprId)> = Vec::new(); // last SV entry per interesting node
    let mut virtual_vectors: Vec<(NodeId, AVec)> = Vec::new();
    // Placeholder variable id ↦ its value, recorded during post-order.
    let mut local_values: HashMap<ExprId, ExprId> = HashMap::new();

    // DFS stack frames: (node, parent_sv, expanded?)
    enum Frame {
        Enter(NodeId, AVec),
        Exit(NodeId),
    }
    let init = AVec::from_compact(&init, &mut arena);
    let mut stack: Vec<Frame> = vec![Frame::Enter(root, init)];

    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Enter(v, parent_sv) => {
                if tree.is_virtual(v) {
                    // Selection: ship the ancestor summary; qualifiers: use
                    // the fresh variables standing for the sub-fragment.
                    virtual_vectors.push((v, parent_sv));
                    let vectors = virtual_qual_vectors(v);
                    node_qv[v.index()] = Some(AVec::from_compact(&vectors.qv, &mut arena));
                    node_qdv[v.index()] = Some(AVec::from_compact(&vectors.qdv, &mut arena));
                    ops += (qlen + slen) as u64;
                    continue;
                }

                // Pre-order: SV with placeholder qualifier values.
                let mut placeholder = |arena: &mut FormulaArena<V>,
                                       node: NodeId,
                                       e: QEntryId|
                 -> ExprId { arena.var(local_var(node, e)) };
                let sv =
                    compute_sv(&mut arena, tree, v, query, &parent_sv, context, &mut placeholder);
                ops += slen as u64;
                if tree.is_element(v) || query.sel_items.is_empty() {
                    let last = sv.id(slen - 1);
                    if last != ExprId::FALSE {
                        pending_sv.push((v, last));
                    }
                }

                stack.push(Frame::Exit(v));
                let children: Vec<NodeId> = tree.children(v).collect();
                if query.sel_positions.is_empty() {
                    for c in children.into_iter().rev() {
                        stack.push(Frame::Enter(c, sv.clone()));
                    }
                } else {
                    let rows = child_fact_rows(tree, &children, query);
                    ops += (children.len() * query.sel_positions.len()) as u64;
                    for (k, c) in children.iter().enumerate().rev() {
                        stack.push(Frame::Enter(*c, sv.extended_with(&rows[k])));
                    }
                }
            }
            Frame::Exit(v) => {
                // Post-order: qualifier vectors, exactly as in qualifier_pass.
                let mut child_any_qv = AVec::all_false(qlen);
                let mut child_any_qdv = AVec::all_false(qlen);
                for c in tree.children(v) {
                    let cqv =
                        node_qv[c.index()].as_ref().expect("children processed before parent");
                    let cqdv =
                        node_qdv[c.index()].as_ref().expect("children processed before parent");
                    child_any_qv.or_into(cqv, &mut arena);
                    child_any_qdv.or_into(cqdv, &mut arena);
                    ops += 2 * qlen as u64;
                }
                let mut qv = AVec::all_false(qlen);
                for (i, entry) in query.qvect.iter().enumerate() {
                    let value = eval_qentry(
                        &mut arena,
                        tree,
                        v,
                        entry,
                        &qv,
                        &child_any_qv,
                        &child_any_qdv,
                        &node_qv,
                    );
                    qv.set(i, value);
                    ops += 1;
                }
                let mut qdv = child_any_qdv;
                qdv.or_into(&qv, &mut arena);
                ops += qlen as u64;
                // The placeholders minted for this node during pre-order can
                // now be unified with the freshly computed values (§4,
                // Example 4.2: qz₂ unifies with y₈).
                for &i in &sel_qual_entries {
                    let var_id = arena.var(local_var(v, i));
                    local_values.insert(var_id, qv.id(i));
                }
                node_qv[v.index()] = Some(qv);
                node_qdv[v.index()] = Some(qdv);
            }
        }
    }

    // --- local unification -------------------------------------------------
    // Replace every placeholder with its computed value. Placeholder values
    // never mention other placeholders (they are formulas over the virtual
    // nodes' variables only), so a single substitution round suffices. The
    // memo makes every shared sub-formula rewrite at most once.
    let mut memo: HashMap<ExprId, ExprId> = HashMap::new();
    let mut answers = Vec::new();
    let mut candidates = Vec::new();
    for (v, formula) in pending_sv {
        let resolved = arena.substitute_ids(formula, &local_values, &mut memo);
        ops += 1;
        if resolved == ExprId::TRUE {
            answers.push(v);
        } else if !resolved.is_const() {
            candidates.push((v, arena.to_expr(resolved)));
        }
    }
    let virtual_vectors: Vec<(NodeId, CompactVector<V>)> = virtual_vectors
        .into_iter()
        .map(|(v, vec)| {
            ops += vec.len() as u64;
            let resolved = match vec {
                AVec::Bits(b) => AVec::Bits(b),
                AVec::Ids(ids) => AVec::Ids(
                    ids.into_iter()
                        .map(|id| arena.substitute_ids(id, &local_values, &mut memo))
                        .collect(),
                ),
            };
            (v, resolved.into_compact(&arena))
        })
        .collect();

    let root_qv = node_qv[root.index()].clone().unwrap_or_else(|| AVec::all_false(qlen));
    let root_qdv = node_qdv[root.index()].clone().unwrap_or_else(|| AVec::all_false(qlen));

    CombinedPassOutput {
        answers,
        candidates,
        virtual_vectors,
        root: QualVectors { qv: root_qv.into_compact(&arena), qdv: root_qdv.into_compact(&arena) },
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::normalize::normalize;
    use crate::parse;
    use paxml_boolex::Assignment;
    use paxml_xml::TreeBuilder;

    /// Variable type for tests that never introduce variables.
    type NoVar = u8;

    fn compiled(text: &str) -> CompiledQuery {
        compile(&normalize(&parse(text).unwrap())).unwrap()
    }

    fn clientele() -> paxml_xml::XmlTree {
        // A condensed version of Fig. 1 (single site, no fragmentation).
        TreeBuilder::new("clientele")
            .open("client")
            .leaf("name", "Anna")
            .leaf("country", "US")
            .open("broker")
            .leaf("name", "E*trade")
            .open("market")
            .leaf("name", "NASDAQ")
            .open("stock")
            .leaf("code", "GOOG")
            .leaf("buy", "$374")
            .leaf("qt", "40")
            .close()
            .close()
            .close()
            .close()
            .open("client")
            .leaf("name", "Lisa")
            .leaf("country", "Canada")
            .open("broker")
            .leaf("name", "CIBC")
            .open("market")
            .leaf("name", "TSE")
            .open("stock")
            .leaf("code", "GOOG")
            .leaf("buy", "$382")
            .leaf("qt", "90")
            .close()
            .close()
            .close()
            .close()
            .build()
    }

    #[test]
    fn qualifier_pass_computes_constants_on_unfragmented_tree() {
        let tree = clientele();
        let q = compiled(
            "client[country/text() = \"US\"]/broker[market/name/text() = \"NASDAQ\"]/name",
        );
        let out = qualifier_pass::<NoVar>(&tree, tree.root(), &q, |_| unreachable!());
        assert!(out.root.is_fully_resolved());
        assert!(out.ops > 0);
        // Constant vectors stay in the packed-bits representation.
        assert!(matches!(out.root.qv, CompactVector::Bits(_)));
        // The US client node must satisfy the first qualifier, the Canadian
        // one must not. Qualifier 1 is the last entry of the first
        // SelfQualifier item.
        let clients = tree.find_all("client");
        let first_qual_entry = match &q.sel_items[1] {
            SelItem::SelfQualifier(ids) => ids[0],
            other => panic!("unexpected {other:?}"),
        };
        let us_val = out.node_qv[clients[0].index()].as_ref().unwrap().const_at(first_qual_entry);
        let ca_val = out.node_qv[clients[1].index()].as_ref().unwrap().const_at(first_qual_entry);
        assert_eq!(us_val, Some(true));
        assert_eq!(ca_val, Some(false));
    }

    #[test]
    fn selection_pass_finds_expected_answers() {
        let tree = clientele();
        let q = compiled(
            "client[country/text() = \"US\"]/broker[market/name/text() = \"NASDAQ\"]/name",
        );
        let quals = qualifier_pass::<NoVar>(&tree, tree.root(), &q, |_| unreachable!());
        let init = CompactVector::all_false(q.svect_len());
        let mut qual_value =
            |v: NodeId, e: QEntryId| quals.node_qv[v.index()].as_ref().unwrap().expr(e);
        let out = selection_pass::<NoVar>(
            &tree,
            tree.root(),
            &q,
            init,
            Some(tree.root()),
            &mut qual_value,
        );
        // Only the US client's broker name qualifies: "E*trade".
        assert_eq!(out.answers.len(), 1);
        assert_eq!(tree.text_of(out.answers[0]), Some("E*trade".to_string()));
        assert!(out.candidates.is_empty());
        assert!(out.virtual_vectors.is_empty());
    }

    #[test]
    fn combined_pass_matches_two_pass_result() {
        let tree = clientele();
        for text in [
            "client/name",
            "client[country/text() = \"US\"]/broker[market/name/text() = \"NASDAQ\"]/name",
            "//name",
            "//stock[buy/val() > 380]/code",
            "client[not(country/text() = \"US\")]/name",
        ] {
            let q = compiled(text);
            let quals = qualifier_pass::<u32>(&tree, tree.root(), &q, |_| unreachable!());
            let init: CompactVector<u32> = CompactVector::all_false(q.svect_len());
            let mut qual_value =
                |v: NodeId, e: QEntryId| quals.node_qv[v.index()].as_ref().unwrap().expr(e);
            let two_pass = selection_pass::<u32>(
                &tree,
                tree.root(),
                &q,
                init.clone(),
                Some(tree.root()),
                &mut qual_value,
            );
            let combined = combined_pass::<u32>(
                &tree,
                tree.root(),
                &q,
                init,
                Some(tree.root()),
                |_| unreachable!(),
                |v, e| (v.index() as u32) * 10_000 + e as u32,
            );
            let mut a = two_pass.answers.clone();
            let mut b = combined.answers.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "answers differ for {text}");
            assert!(combined.candidates.is_empty(), "no candidates expected for {text}");
        }
    }

    #[test]
    fn absolute_query_context_is_the_document_node() {
        let tree = clientele();
        let q = compiled("/clientele/client/name");
        let quals = qualifier_pass::<NoVar>(&tree, tree.root(), &q, |_| unreachable!());
        let init = root_context_vector(&q);
        assert!(init[0]);
        let context = evaluation_context(&q, tree.root());
        assert_eq!(context, None);
        let mut qual_value =
            |v: NodeId, e: QEntryId| quals.node_qv[v.index()].as_ref().unwrap().expr(e);
        let out = selection_pass::<NoVar>(
            &tree,
            tree.root(),
            &q,
            CompactVector::from_bools(&init),
            context,
            &mut qual_value,
        );
        assert_eq!(out.answers.len(), 2); // both clients' name elements
    }

    #[test]
    fn descendant_axis_propagates_down() {
        let tree = clientele();
        let q = compiled("//code");
        let quals = qualifier_pass::<NoVar>(&tree, tree.root(), &q, |_| unreachable!());
        let init = root_context_vector(&q);
        // Leading `//` inherits the context truth so the root element can
        // already be inside the closure.
        assert!(init[1]);
        let mut qual_value =
            |v: NodeId, e: QEntryId| quals.node_qv[v.index()].as_ref().unwrap().expr(e);
        let out = selection_pass::<NoVar>(
            &tree,
            tree.root(),
            &q,
            CompactVector::from_bools(&init),
            None,
            &mut qual_value,
        );
        assert_eq!(out.answers.len(), 2);
        for a in &out.answers {
            assert_eq!(tree.label(*a), Some("code"));
        }
    }

    #[test]
    fn variables_flow_through_selection_when_init_is_unknown() {
        // Simulate a non-root fragment: the init vector is all variables.
        let tree = TreeBuilder::new("broker").leaf("name", "Bache").build();
        let q = compiled("client/broker/name");
        let quals = qualifier_pass::<String>(&tree, tree.root(), &q, |_| unreachable!());
        let init = CompactVector::fresh_variables(q.svect_len(), |i| format!("z{i}"));
        let mut qual_value =
            |v: NodeId, e: QEntryId| quals.node_qv[v.index()].as_ref().unwrap().expr(e);
        let out = selection_pass::<String>(&tree, tree.root(), &q, init, None, &mut qual_value);
        // The name node is a *candidate*: it is an answer iff the unknown
        // ancestor prefix ends in a matched `client` (variable z1 of the
        // paper's Example 3.4; here the entry index is 1 for the client
        // prefix because entry 0 is the empty prefix).
        assert!(out.answers.is_empty());
        assert_eq!(out.candidates.len(), 1);
        let (node, formula) = &out.candidates[0];
        assert_eq!(tree.text_of(*node), Some("Bache".to_string()));
        assert_eq!(formula.variables().len(), 1);
        // Unifying the variable with "the parent prefix client/broker was
        // matched up to client" turns the candidate into an answer.
        let var = formula.variables().into_iter().next().unwrap();
        let mut env = Assignment::new();
        env.set(var, true);
        assert!(formula.assign(&env).is_true());
    }
}

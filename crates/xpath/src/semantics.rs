//! A deliberately naive, set-based reference semantics for the class X.
//!
//! This module exists purely as a *correctness oracle*: it implements the
//! denotational semantics of §2.2 ("val(Q, v) yields the set of nodes of T
//! reachable via Q from v") as directly as possible, with no attention to
//! efficiency, so that the optimized evaluators (centralized two-pass, PaX3,
//! PaX2) can be checked against an independent implementation in unit,
//! integration and property-based tests.

use crate::ast::{CmpOp, PosPred};
use crate::compile::{PosFilter, PosTest};
use crate::error::XPathResult;
use crate::normalize::{normalize, NormItem, NormPath, NormQual, NormQuery};
use crate::parse;
use paxml_xml::{NodeId, XmlTree};
use std::collections::BTreeSet;

/// A context node: either a real node or the implicit document node sitting
/// above the root element (used to anchor absolute queries).
type Ctx = Option<NodeId>;

/// Evaluate a query given as text. Returns the answer set in document order.
pub fn oracle_eval(tree: &XmlTree, query_text: &str) -> XPathResult<Vec<NodeId>> {
    let query = parse(query_text)?;
    Ok(oracle_eval_query(tree, &normalize(&query)))
}

/// Evaluate a normalized query.
pub fn oracle_eval_query(tree: &XmlTree, query: &NormQuery) -> Vec<NodeId> {
    let initial: BTreeSet<Ctx> = if query.absolute {
        std::iter::once(None).collect()
    } else {
        std::iter::once(Some(tree.root())).collect()
    };
    let result = eval_items(tree, &query.path.items, &initial);
    // Keep document order and drop the (non-selectable) document node.
    let selected: BTreeSet<NodeId> = result.into_iter().flatten().collect();
    tree.all_nodes().filter(|n| selected.contains(n)).collect()
}

/// Children of a context node.
fn ctx_children(tree: &XmlTree, ctx: Ctx) -> Vec<NodeId> {
    match ctx {
        None => vec![tree.root()],
        Some(n) => tree.children(n).collect(),
    }
}

/// Descendant-or-self closure of a context node.
fn ctx_descendants_or_self(tree: &XmlTree, ctx: Ctx) -> Vec<Ctx> {
    match ctx {
        None => std::iter::once(None).chain(tree.all_nodes().map(Some)).collect(),
        Some(n) => tree.pre_order(n).map(Some).collect(),
    }
}

/// The node test a positional item at `items[at]` counts against: the
/// nearest preceding step item (positions and qualifiers of the same step
/// are transparent, `//` has no single step to count).
fn preceding_pos_test(items: &[NormItem], at: usize) -> Option<PosTest> {
    for item in items[..at].iter().rev() {
        match item {
            NormItem::Label(l) => return Some(PosTest::Label(l.clone())),
            NormItem::Wildcard => return Some(PosTest::AnyElement),
            NormItem::Qualifier(_) | NormItem::Position(_) => continue,
            NormItem::DescendantOrSelf => return None,
        }
    }
    None
}

/// Is `v` at an accepted position among the test-matching children of its
/// parent? A root element counts as the only child of the document node.
fn position_accepted(tree: &XmlTree, v: NodeId, test: &PosTest, pred: PosPred) -> bool {
    let filter = PosFilter { test: test.clone(), preds: vec![pred] };
    match tree.parent(v) {
        Some(p) => {
            let children: Vec<NodeId> = tree.children(p).collect();
            let mask = crate::eval::position_accept_mask(tree, &children, &filter);
            let k = children.iter().position(|c| *c == v).expect("node among its siblings");
            mask[k]
        }
        None => filter.test.matches(tree.step_label(v)) && filter.accepts(1, 1),
    }
}

/// Evaluate a sequence of normalized items over a set of context nodes.
fn eval_items(tree: &XmlTree, items: &[NormItem], context: &BTreeSet<Ctx>) -> BTreeSet<Ctx> {
    let mut current: BTreeSet<Ctx> = context.clone();
    for (at, item) in items.iter().enumerate() {
        match item {
            NormItem::Label(l) => {
                let mut next = BTreeSet::new();
                for &ctx in &current {
                    for c in ctx_children(tree, ctx) {
                        if tree.label(c) == Some(l.as_str()) {
                            next.insert(Some(c));
                        }
                    }
                }
                current = next;
            }
            NormItem::Wildcard => {
                let mut next = BTreeSet::new();
                for &ctx in &current {
                    for c in ctx_children(tree, ctx) {
                        if tree.is_element(c) {
                            next.insert(Some(c));
                        }
                    }
                }
                current = next;
            }
            NormItem::DescendantOrSelf => {
                let mut next = BTreeSet::new();
                for &ctx in &current {
                    next.extend(ctx_descendants_or_self(tree, ctx));
                }
                current = next;
            }
            NormItem::Qualifier(q) => {
                current.retain(|&ctx| eval_qual(tree, q, ctx));
            }
            NormItem::Position(pred) => {
                let test = preceding_pos_test(items, at);
                current.retain(|&ctx| match (&test, ctx) {
                    (Some(t), Some(v)) => position_accepted(tree, v, t, *pred),
                    _ => false,
                });
            }
        }
    }
    current
}

/// Does the qualifier hold at the context node?
fn eval_qual(tree: &XmlTree, q: &NormQual, ctx: Ctx) -> bool {
    match q {
        NormQual::Path(p) => {
            !eval_items(tree, &p.items, &std::iter::once(ctx).collect()).is_empty()
        }
        NormQual::TextIs(s) => match ctx {
            None => false,
            Some(v) => tree.children(v).any(|c| tree.text_value(c) == Some(s.as_str())),
        },
        NormQual::ValIs(op, n) => match ctx {
            None => false,
            Some(v) => tree
                .children(v)
                .any(|c| tree.text_value(c).map(|t| numeric_matches(t, *op, *n)).unwrap_or(false)),
        },
        NormQual::HasAttr(a) => matches!(ctx, Some(v) if tree.attribute(v, a).is_some()),
        NormQual::AttrIs(a, s) => {
            matches!(ctx, Some(v) if tree.attribute(v, a) == Some(s.as_str()))
        }
        NormQual::AttrCmp(a, op, n) => match ctx {
            None => false,
            Some(v) => tree.attribute(v, a).map(|t| numeric_matches(t, *op, *n)).unwrap_or(false),
        },
        NormQual::Not(inner) => !eval_qual(tree, inner, ctx),
        NormQual::And(parts) => parts.iter().all(|p| eval_qual(tree, p, ctx)),
        NormQual::Or(parts) => parts.iter().any(|p| eval_qual(tree, p, ctx)),
    }
}

/// Check a `val() op num` comparison the same way the vector evaluator does:
/// trim whitespace, tolerate a leading `$`, fail closed on non-numbers.
pub fn numeric_matches(text: &str, op: CmpOp, num: f64) -> bool {
    let t = text.trim();
    let t = t.strip_prefix('$').unwrap_or(t);
    t.parse::<f64>().map(|v| op.apply(v, num)).unwrap_or(false)
}

/// Evaluate a *qualifier* (Boolean query) at a given node — the oracle for
/// ParBoX-style Boolean evaluation.
pub fn oracle_eval_qualifier(tree: &XmlTree, q: &NormQual, node: NodeId) -> bool {
    eval_qual(tree, q, Some(node))
}

/// Re-export of [`NormPath`]-level evaluation for tests that want to probe
/// qualifier paths directly.
pub fn oracle_eval_path_at(tree: &XmlTree, path: &NormPath, node: NodeId) -> Vec<NodeId> {
    let ctx: BTreeSet<Ctx> = std::iter::once(Some(node)).collect();
    let out = eval_items(tree, &path.items, &ctx);
    let selected: BTreeSet<NodeId> = out.into_iter().flatten().collect();
    tree.all_nodes().filter(|n| selected.contains(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized;
    use paxml_xml::TreeBuilder;

    fn sample() -> XmlTree {
        TreeBuilder::new("clientele")
            .open("client")
            .leaf("name", "Anna")
            .leaf("country", "US")
            .open("broker")
            .leaf("name", "E*trade")
            .open("market")
            .leaf("name", "NASDAQ")
            .open("stock")
            .leaf("code", "GOOG")
            .leaf("buy", "$374")
            .leaf("qt", "75")
            .close()
            .close()
            .close()
            .close()
            .open("client")
            .leaf("name", "Lisa")
            .leaf("country", "Canada")
            .open("broker")
            .leaf("name", "CIBC")
            .open("market")
            .leaf("name", "TSE")
            .open("stock")
            .leaf("code", "GOOG")
            .leaf("buy", "$382")
            .leaf("qt", "90")
            .close()
            .close()
            .close()
            .close()
            .build()
    }

    #[test]
    fn oracle_selects_expected_nodes() {
        let t = sample();
        let names = oracle_eval(&t, "client/name").unwrap();
        assert_eq!(names.len(), 2);
        let answers = oracle_eval(&t, "client[country/text()='US']/broker/name").unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(t.text_of(answers[0]), Some("E*trade".into()));
    }

    #[test]
    fn oracle_handles_absolute_and_descendant_queries() {
        let t = sample();
        assert_eq!(oracle_eval(&t, "/clientele/client").unwrap().len(), 2);
        assert_eq!(oracle_eval(&t, "//code").unwrap().len(), 2);
        assert_eq!(oracle_eval(&t, "//stock[buy/val() > 380]/code").unwrap().len(), 1);
        assert_eq!(oracle_eval(&t, "/wrong/client").unwrap().len(), 0);
        // `//clientele` must select the root element itself.
        assert_eq!(oracle_eval(&t, "//clientele").unwrap(), vec![t.root()]);
    }

    #[test]
    fn oracle_agrees_with_centralized_on_a_query_battery() {
        let t = sample();
        for q in [
            "client/name",
            "client/broker/name",
            "//name",
            "//market/name",
            "/clientele//stock/code",
            "client[country/text()='US']/broker[market/name/text()='NASDAQ']/name",
            "client[not(country/text()='US')]/name",
            "//stock[qt > 80]/code",
            "//stock[buy/val() >= 374 and qt < 100]/code",
            "client[broker[market/name/text()='TSE']]/name",
            "*/*/name",
            ".[//code/text()='GOOG']",
            "client[country/text()='US' or country/text()='Canada']/name",
            "//*[code/text()='GOOG']/buy",
            "nonexistent/path",
            "//clientele/client/name",
            "client//name",
        ] {
            let oracle = oracle_eval(&t, q).unwrap();
            let fast = centralized::evaluate(&t, q).unwrap();
            assert_eq!(oracle, fast.answers, "disagreement on query {q}");
        }
    }

    fn attributed() -> XmlTree {
        TreeBuilder::new("site")
            .open("people")
            .open("person")
            .attr("id", "p1")
            .attr("age", "31")
            .leaf("name", "Anna")
            .leaf("name", "Annie")
            .close()
            .open("person")
            .attr("id", "p2")
            .leaf("name", "Lisa")
            .close()
            .open("person")
            .leaf("name", "Kim")
            .close()
            .close()
            .open("items")
            .open("item")
            .attr("price", "$12.50")
            .leaf("name", "pen")
            .close()
            .open("item")
            .attr("price", "7")
            .leaf("name", "ink")
            .close()
            .close()
            .build()
    }

    #[test]
    fn oracle_agrees_with_centralized_on_widened_constructs() {
        let t = attributed();
        for q in [
            // Attribute steps and qualifiers.
            "people/person[@id]/name",
            "people/person/@id",
            "//person[@id = \"p2\"]/name",
            "//item[@price > 10]/name",
            "//person[@age >= 31 and @id]/name",
            "//person[not(@id)]/name",
            ".[//person/@id]",
            "people[person/@id = \"p1\"]//name",
            // Positional predicates.
            "people/person[1]/name",
            "people/person[2]/name",
            "people/person[last()]/name",
            "people/person[1]/name[last()]",
            "people/person[4]/name",
            "//person[2]",
            "/site[1]/people/person[1][@id]/name",
            "people/*[2]/name",
            "people/person[name[2]]/name[1]",
            ".[people/person[3]]",
            "people/person[1][last()]",
            // Numeric text() comparisons and explicit axes.
            "//person[@age]/name[text() = \"Anna\"]",
            "descendant-or-self::person/name[1]",
            "people/child::person[2]/attribute::id",
            "site/people",
        ] {
            let oracle = oracle_eval(&t, q).unwrap();
            let fast = centralized::evaluate(&t, q).unwrap();
            assert_eq!(oracle, fast.answers, "disagreement on query {q}");
        }
        // Spot-check a few answers to anchor the semantics, not just the
        // agreement between the two implementations.
        let first = oracle_eval(&t, "people/person[1]/name[last()]").unwrap();
        assert_eq!(first.len(), 1);
        assert_eq!(t.text_of(first[0]), Some("Annie".into()));
        assert_eq!(oracle_eval(&t, "people/person[last()]/name").unwrap().len(), 1);
        assert_eq!(oracle_eval(&t, "//item[@price > 10]/name").unwrap().len(), 1);
        assert_eq!(oracle_eval(&t, "people/person[@id]/name").unwrap().len(), 3);
    }

    #[test]
    fn qualifier_oracle_checks_boolean_queries() {
        let t = sample();
        let q = crate::parse(".[//stock/code/text()='GOOG']").unwrap();
        let norm = normalize(&q);
        match &norm.path.items[0] {
            NormItem::Qualifier(qual) => {
                assert!(oracle_eval_qualifier(&t, qual, t.root()));
                let clients = t.find_all("client");
                assert!(oracle_eval_qualifier(&t, qual, clients[0]));
                let names = t.find_all("name");
                assert!(!oracle_eval_qualifier(&t, qual, names[0]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn path_oracle_returns_reachable_nodes() {
        let t = sample();
        let q = crate::parse("broker/market/name").unwrap();
        let norm = normalize(&q);
        let clients = t.find_all("client");
        let from_first = oracle_eval_path_at(&t, &norm.path, clients[0]);
        assert_eq!(from_first.len(), 1);
        assert_eq!(t.text_of(from_first[0]), Some("NASDAQ".into()));
    }

    #[test]
    fn numeric_matcher_handles_dollar_and_garbage() {
        assert!(numeric_matches("$374", CmpOp::Gt, 300.0));
        assert!(numeric_matches(" 40 ", CmpOp::Eq, 40.0));
        assert!(!numeric_matches("abc", CmpOp::Eq, 0.0));
        assert!(!numeric_matches("", CmpOp::Ge, 0.0));
    }
}

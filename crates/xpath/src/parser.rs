//! Recursive-descent parser for the class X of XPath queries.
//!
//! Accepted concrete syntax (ASCII spellings of the paper's notation):
//!
//! ```text
//! query      := ('/' | '//')? path
//! path       := step (('/' | '//') step)*
//! step       := ('.' | NAME | '*') ('[' qualifier ']')*
//! qualifier  := or
//! or         := and (('or' | '||' | '∨') and)*
//! and        := unary (('and' | '&&' | '∧') unary)*
//! unary      := ('not' | '!' | '¬') unary | '(' qualifier ')' | comparison
//! comparison := qpath (CMP (STRING | NUMBER))?
//! qpath      := ('/' | '//')? qstep (('/' | '//') qstep)*
//! qstep      := step | 'text' '(' ')' | 'val' '(' ')'
//! ```
//!
//! The shorthands `path = "str"` and `path > 20` used by the paper's
//! experiment queries (Fig. 7) are accepted as sugar for
//! `path/text() = "str"` and `path/val() > 20`.

use crate::ast::{CmpOp, PathExpr, PosPred, Qualifier, Query};
use crate::error::{XPathError, XPathResult};
use crate::lexer::{tokenize, Token, TokenKind};

/// Parse a query from its concrete syntax.
pub fn parse(input: &str) -> XPathResult<Query> {
    let tokens = tokenize(input)?;
    let mut parser = ParserState { tokens, pos: 0 };
    let query = parser.parse_query()?;
    parser.expect_eof()?;
    Ok(query)
}

struct ParserState {
    tokens: Vec<Token>,
    pos: usize,
}

impl ParserState {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn unexpected(&self, expected: &str) -> XPathError {
        XPathError::UnexpectedToken {
            offset: self.peek_offset(),
            found: format!("{:?}", self.peek()),
            expected: expected.to_string(),
        }
    }

    fn expect_eof(&self) -> XPathResult<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.unexpected("end of query"))
        }
    }

    fn parse_query(&mut self) -> XPathResult<Query> {
        let (absolute, leading_descendant) = match self.peek() {
            TokenKind::Slash => {
                self.bump();
                (true, false)
            }
            TokenKind::DoubleSlash => {
                self.bump();
                (true, true)
            }
            TokenKind::Eof => return Err(XPathError::EmptyQuery),
            _ => (false, false),
        };
        let path = self.parse_path(leading_descendant, /*in_qualifier=*/ false)?;
        Ok(Query { absolute, path })
    }

    /// Consume an explicit `axis::` prefix if the next tokens are a name
    /// followed by `::`. Only `child`, `descendant-or-self` and `attribute`
    /// are supported; anything else is a hard error.
    fn parse_axis_prefix(&mut self) -> XPathResult<Option<AxisKind>> {
        let TokenKind::Name(name) = self.peek().clone() else { return Ok(None) };
        if !matches!(self.tokens.get(self.pos + 1).map(|t| &t.kind), Some(TokenKind::DoubleColon)) {
            return Ok(None);
        }
        let offset = self.peek_offset();
        self.bump(); // the axis name
        self.bump(); // `::`
        match name.as_str() {
            "child" => Ok(Some(AxisKind::Child)),
            "descendant-or-self" => Ok(Some(AxisKind::Descendant)),
            "attribute" => Ok(Some(AxisKind::Attribute)),
            _ => Err(XPathError::UnknownAxis { offset, axis: name }),
        }
    }

    /// The name after an `@` / `attribute::`.
    fn parse_attribute_name(&mut self, at_offset: usize) -> XPathResult<String> {
        match self.peek().clone() {
            TokenKind::Name(n) => {
                self.bump();
                Ok(n)
            }
            _ => Err(XPathError::ExpectedAttributeName { offset: at_offset }),
        }
    }

    /// Parse a `/`-separated sequence of steps. `leading_descendant` is true
    /// when the caller already consumed a leading `//`.
    ///
    /// A final attribute step `…/@attr` (or `…/attribute::attr`) desugars to
    /// an attribute-existence qualifier on the preceding path — `person/@id`
    /// parses as `person[@id]` — so the selection semantics stay node-valued.
    /// An attribute step anywhere but last, or after `//`, is an error.
    fn parse_path(
        &mut self,
        leading_descendant: bool,
        in_qualifier: bool,
    ) -> XPathResult<PathExpr> {
        let mut acc: Option<PathExpr> = None;
        let mut pending = if leading_descendant { Axis::Descendant } else { Axis::Child };
        loop {
            // An explicit `axis::` prefix on this step?
            let mut attr_axis = false;
            if let Some(kind) = self.parse_axis_prefix()? {
                match kind {
                    AxisKind::Child => {}
                    AxisKind::Descendant => pending = Axis::Descendant,
                    AxisKind::Attribute => attr_axis = true,
                }
            }
            if attr_axis || matches!(self.peek(), TokenKind::At) {
                let at_offset = self.peek_offset();
                if !attr_axis {
                    self.bump(); // `@`
                }
                if pending == Axis::Descendant {
                    return Err(XPathError::UnexpectedToken {
                        offset: at_offset,
                        found: "an attribute step after '//'".to_string(),
                        expected: "a child-axis attribute step ('/@attr')".to_string(),
                    });
                }
                let name = self.parse_attribute_name(at_offset)?;
                let prefix = acc.unwrap_or(PathExpr::Empty);
                let step = prefix.qualified(Qualifier::HasAttr(PathExpr::Empty, name));
                if matches!(
                    self.peek(),
                    TokenKind::Slash | TokenKind::DoubleSlash | TokenKind::LBracket
                ) {
                    return Err(XPathError::AttributeStepNotLast { offset: self.peek_offset() });
                }
                return Ok(step);
            }
            let step = self.parse_step(in_qualifier)?;
            acc = Some(match acc {
                None => match pending {
                    Axis::Child => step,
                    Axis::Descendant => {
                        PathExpr::Descendant(Box::new(PathExpr::Empty), Box::new(step))
                    }
                },
                Some(prev) => match pending {
                    Axis::Child => PathExpr::Child(Box::new(prev), Box::new(step)),
                    Axis::Descendant => PathExpr::Descendant(Box::new(prev), Box::new(step)),
                },
            });
            match self.peek() {
                TokenKind::Slash => {
                    self.bump();
                    pending = Axis::Child;
                }
                TokenKind::DoubleSlash => {
                    self.bump();
                    pending = Axis::Descendant;
                }
                _ => return Ok(acc.expect("at least one step was parsed")),
            }
        }
    }

    /// A positional predicate right after `[`: a number or `last()`.
    /// Returns `None` (consuming nothing) when the bracket holds an ordinary
    /// qualifier.
    fn try_parse_position(&mut self) -> XPathResult<Option<PosPred>> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                let offset = self.peek_offset();
                self.bump();
                if n.fract() != 0.0 || n < 1.0 || n > u32::MAX as f64 {
                    return Err(XPathError::InvalidPosition { offset, text: format!("{n}") });
                }
                Ok(Some(PosPred::Index(n as u32)))
            }
            TokenKind::Name(name) if name == "last" && self.lookahead_is_call() => {
                self.bump(); // last
                self.bump(); // (
                if !self.eat(&TokenKind::RParen) {
                    return Err(self.unexpected("')' after last("));
                }
                Ok(Some(PosPred::Last))
            }
            _ => Ok(None),
        }
    }

    /// A single step: `.`, a name, or `*`, optionally followed by predicates
    /// (qualifiers or positional predicates).
    fn parse_step(&mut self, in_qualifier: bool) -> XPathResult<PathExpr> {
        let offset = self.peek_offset();
        let base = match self.bump() {
            TokenKind::Dot => PathExpr::Empty,
            TokenKind::Star => PathExpr::Wildcard,
            TokenKind::Name(name) => {
                if !in_qualifier
                    && (name == "text" || name == "val")
                    && matches!(self.peek(), TokenKind::LParen)
                {
                    return Err(XPathError::TestOutsideQualifier { offset });
                }
                PathExpr::Label(name)
            }
            _ => {
                // We consumed a token we should not have; report at its offset.
                return Err(XPathError::UnexpectedToken {
                    offset,
                    found: format!("{:?}", self.tokens[self.pos.saturating_sub(1)].kind),
                    expected: "a step (name, '*' or '.')".to_string(),
                });
            }
        };
        let base_is_step = matches!(base, PathExpr::Label(_) | PathExpr::Wildcard);
        let mut acc = base;
        while matches!(self.peek(), TokenKind::LBracket) {
            self.bump();
            if let Some(pred) = self.try_parse_position()? {
                if !base_is_step {
                    return Err(XPathError::PositionWithoutStep);
                }
                if !self.eat(&TokenKind::RBracket) {
                    return Err(self.unexpected("']' closing the position"));
                }
                acc = PathExpr::Qualified(Box::new(acc), Box::new(Qualifier::Position(pred)));
                continue;
            }
            let q = self.parse_qualifier()?;
            if !self.eat(&TokenKind::RBracket) {
                return Err(self.unexpected("']' closing the qualifier"));
            }
            acc = PathExpr::Qualified(Box::new(acc), Box::new(q));
        }
        Ok(acc)
    }

    fn parse_qualifier(&mut self) -> XPathResult<Qualifier> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> XPathResult<Qualifier> {
        let mut left = self.parse_and()?;
        while matches!(self.peek(), TokenKind::Or) {
            self.bump();
            let right = self.parse_and()?;
            left = Qualifier::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> XPathResult<Qualifier> {
        let mut left = self.parse_unary()?;
        while matches!(self.peek(), TokenKind::And) {
            self.bump();
            let right = self.parse_unary()?;
            left = Qualifier::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> XPathResult<Qualifier> {
        match self.peek() {
            TokenKind::Not => {
                self.bump();
                // `not(...)` or prefix `!q` / `¬q`.
                if matches!(self.peek(), TokenKind::LParen) {
                    self.bump();
                    let inner = self.parse_qualifier()?;
                    if !self.eat(&TokenKind::RParen) {
                        return Err(self.unexpected("')' closing not(...)"));
                    }
                    Ok(Qualifier::Not(Box::new(inner)))
                } else {
                    let inner = self.parse_unary()?;
                    Ok(Qualifier::Not(Box::new(inner)))
                }
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.parse_qualifier()?;
                if !self.eat(&TokenKind::RParen) {
                    return Err(self.unexpected("')'"));
                }
                Ok(inner)
            }
            _ => self.parse_comparison(),
        }
    }

    /// A qualifier path, optionally compared against a string or a number.
    ///
    /// `text() op num` (a numeric comparison against a text node) desugars
    /// onto the `val()` machinery: `[price/text() > 20]` parses as
    /// `[price/val() > 20]`. String comparisons stay exact-match.
    fn parse_comparison(&mut self) -> XPathResult<Qualifier> {
        let (path, test) = self.parse_qualifier_path()?;
        match self.peek().clone() {
            TokenKind::Cmp(op) => {
                self.bump();
                match self.bump() {
                    TokenKind::Str(s) => match &test {
                        Some(TrailingTest::Val) => Err(XPathError::UnexpectedToken {
                            offset: self.peek_offset(),
                            found: "a string literal after val()".to_string(),
                            expected: "a number".to_string(),
                        }),
                        Some(TrailingTest::Attr(name)) => {
                            let base = Qualifier::AttrEquals(path, name.clone(), s);
                            match op {
                                CmpOp::Eq => Ok(base),
                                CmpOp::Ne => Ok(Qualifier::Not(Box::new(base))),
                                _ => Err(XPathError::UnexpectedToken {
                                    offset: self.peek_offset(),
                                    found: "an ordering comparison against a string".to_string(),
                                    expected: "'=' or '!=' for attribute comparisons".to_string(),
                                }),
                            }
                        }
                        _ => {
                            let base = Qualifier::TextEquals(path, s);
                            match op {
                                CmpOp::Eq => Ok(base),
                                CmpOp::Ne => Ok(Qualifier::Not(Box::new(base))),
                                _ => Err(XPathError::UnexpectedToken {
                                    offset: self.peek_offset(),
                                    found: "an ordering comparison against a string".to_string(),
                                    expected: "'=' or '!=' for text() comparisons".to_string(),
                                }),
                            }
                        }
                    },
                    TokenKind::Number(n) => match &test {
                        Some(TrailingTest::Attr(name)) => {
                            Ok(Qualifier::AttrCompare(path, name.clone(), op, n))
                        }
                        _ => Ok(Qualifier::ValCompare(path, op, n)),
                    },
                    other => Err(XPathError::UnexpectedToken {
                        offset: self.peek_offset(),
                        found: format!("{other:?}"),
                        expected: "a string or numeric literal".to_string(),
                    }),
                }
            }
            _ => match test {
                None => Ok(Qualifier::Path(path)),
                Some(TrailingTest::Attr(name)) => Ok(Qualifier::HasAttr(path, name)),
                Some(_) => Err(self.unexpected("a comparison after text()/val()")),
            },
        }
    }

    /// Parse the path part of a qualifier, detecting a trailing `text()` or
    /// `val()` test. Returns the path *without* the trailing test step.
    fn parse_qualifier_path(&mut self) -> XPathResult<(PathExpr, Option<TrailingTest>)> {
        // Optional leading axis. Inside qualifiers both `/p` and `p` mean a
        // path starting at the children of the context node (the paper's
        // experiment queries write `[/profile/age > 20]`); a leading `//`
        // starts at any descendant.
        let leading_descendant = if self.eat(&TokenKind::DoubleSlash) {
            true
        } else {
            let _ = self.eat(&TokenKind::Slash);
            false
        };

        let mut acc: Option<PathExpr> = None;
        let mut pending_axis = if leading_descendant { Axis::Descendant } else { Axis::Child };
        loop {
            // An explicit `axis::` prefix on this step?
            let mut attr_axis = false;
            if let Some(kind) = self.parse_axis_prefix()? {
                match kind {
                    AxisKind::Child => {}
                    AxisKind::Descendant => pending_axis = Axis::Descendant,
                    AxisKind::Attribute => attr_axis = true,
                }
            }

            // A trailing attribute test? `[a/@id …]`, `[@id …]`, `[a//@id …]`
            // (the latter descends like `//text()` does: any strict element
            // descendant of the prefix carrying the attribute).
            if attr_axis || matches!(self.peek(), TokenKind::At) {
                let at_offset = self.peek_offset();
                if !attr_axis {
                    self.bump(); // `@`
                }
                let name = self.parse_attribute_name(at_offset)?;
                let path = match (acc, pending_axis) {
                    (None, Axis::Child) => PathExpr::Empty,
                    (None, Axis::Descendant) => PathExpr::Descendant(
                        Box::new(PathExpr::Empty),
                        Box::new(PathExpr::Wildcard),
                    ),
                    (Some(p), Axis::Child) => p,
                    (Some(p), Axis::Descendant) => {
                        PathExpr::Descendant(Box::new(p), Box::new(PathExpr::Wildcard))
                    }
                };
                return Ok((path, Some(TrailingTest::Attr(name))));
            }

            // A trailing test?
            if let TokenKind::Name(name) = self.peek().clone() {
                if (name == "text" || name == "val") && self.lookahead_is_call() {
                    self.bump(); // name
                    self.bump(); // (
                    if !self.eat(&TokenKind::RParen) {
                        return Err(self.unexpected("')' after text(/val("));
                    }
                    let path = acc.unwrap_or(PathExpr::Empty);
                    let path = if pending_axis == Axis::Descendant && acc_is_none_marker(&path) {
                        // `[//text() = "x"]` — descend to any text node.
                        PathExpr::Descendant(
                            Box::new(PathExpr::Empty),
                            Box::new(PathExpr::Wildcard),
                        )
                    } else {
                        path
                    };
                    let test = if name == "text" { TrailingTest::Text } else { TrailingTest::Val };
                    return Ok((path, Some(test)));
                }
            }

            let step = self.parse_step(/*in_qualifier=*/ true)?;
            acc = Some(match acc {
                None => {
                    if pending_axis == Axis::Descendant {
                        PathExpr::Descendant(Box::new(PathExpr::Empty), Box::new(step))
                    } else {
                        step
                    }
                }
                Some(prev) => match pending_axis {
                    Axis::Child => PathExpr::Child(Box::new(prev), Box::new(step)),
                    Axis::Descendant => PathExpr::Descendant(Box::new(prev), Box::new(step)),
                },
            });

            match self.peek() {
                TokenKind::Slash => {
                    self.bump();
                    pending_axis = Axis::Child;
                }
                TokenKind::DoubleSlash => {
                    self.bump();
                    pending_axis = Axis::Descendant;
                }
                _ => return Ok((acc.unwrap_or(PathExpr::Empty), None)),
            }
        }
    }

    fn lookahead_is_call(&self) -> bool {
        matches!(self.tokens.get(self.pos + 1).map(|t| &t.kind), Some(TokenKind::LParen))
    }
}

#[derive(PartialEq, Clone, Copy)]
enum Axis {
    Child,
    Descendant,
}

/// An explicit `axis::` prefix.
#[derive(PartialEq, Clone, Copy)]
enum AxisKind {
    Child,
    Descendant,
    Attribute,
}

/// Trailing `text()` / `val()` / `@attr` marker inside a qualifier path.
#[derive(Debug, Clone, PartialEq)]
enum TrailingTest {
    Text,
    Val,
    Attr(String),
}

fn acc_is_none_marker(path: &PathExpr) -> bool {
    matches!(path, PathExpr::Empty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query_q1() {
        let q = parse("/sites/site/people/person").unwrap();
        assert!(q.absolute);
        assert!(!q.has_qualifier());
        assert!(!q.has_descendant_axis());
        assert_eq!(q.to_string(), "/sites/site/people/person");
    }

    #[test]
    fn parses_paper_query_q2_with_descendant() {
        let q = parse("/sites/site/open_auctions//annotation").unwrap();
        assert!(q.absolute);
        assert!(q.has_descendant_axis());
        assert!(!q.has_qualifier());
    }

    #[test]
    fn parses_paper_query_q3_with_qualifiers() {
        let q = parse(
            "/sites/site/people/person[profile/age > 20 and address/country=\"US\"]/creditcard",
        )
        .unwrap();
        assert!(q.has_qualifier());
        assert!(!q.has_descendant_axis());
        // The qualifier sits on `person`, the selection continues to creditcard.
        match &q.path {
            PathExpr::Child(prefix, last) => {
                assert_eq!(**last, PathExpr::Label("creditcard".into()));
                match &**prefix {
                    PathExpr::Child(_, qualified_person) => match &**qualified_person {
                        PathExpr::Qualified(person, _) => {
                            assert_eq!(**person, PathExpr::Label("person".into()));
                        }
                        other => panic!("unexpected shape {other:?}"),
                    },
                    other => panic!("unexpected shape {other:?}"),
                }
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn parses_paper_query_q4_with_descendant_and_qualifiers() {
        let q = parse(
            "/sites//people/person[/profile/age > 20 and /address/country=\"US\"]/creditcard",
        )
        .unwrap();
        assert!(q.has_qualifier());
        assert!(q.has_descendant_axis());
    }

    #[test]
    fn parses_clientele_query_with_negation() {
        // Q1 of the introduction:
        // //broker[//stock/code/text()="goog" and not(//stock/code/text()="yhoo")]/name
        let q = parse(
            "//broker[//stock/code/text()=\"goog\" and not(//stock/code/text()=\"yhoo\")]/name",
        )
        .unwrap();
        assert!(q.absolute);
        assert!(q.has_qualifier());
        let rendered = q.to_string();
        assert!(rendered.starts_with("//broker["));
        assert!(rendered.contains("not("));
    }

    #[test]
    fn boolean_query_from_the_introduction() {
        // [//stock/code/text() = "goog"] — a Boolean query is written as a
        // qualifier on the empty path.
        let q = parse(".[//stock/code/text()=\"goog\"]").unwrap();
        assert!(!q.absolute);
        assert!(matches!(q.path, PathExpr::Qualified(_, _)));
    }

    #[test]
    fn example_2_1_query() {
        let q =
            parse("client[country/text() = \"US\"]/broker[market/name/text() = \"NASDAQ\"]/name")
                .unwrap();
        assert!(!q.absolute);
        assert!(q.has_qualifier());
        assert_eq!(
            q.to_string(),
            "client[country/text() = \"US\"]/broker[market/name/text() = \"NASDAQ\"]/name"
        );
    }

    #[test]
    fn shorthand_comparisons_desugar_to_text_and_val() {
        let q = parse("person[address/country=\"US\"]").unwrap();
        match &q.path {
            PathExpr::Qualified(_, qual) => {
                assert!(matches!(**qual, Qualifier::TextEquals(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
        let q = parse("person[profile/age >= 21]").unwrap();
        match &q.path {
            PathExpr::Qualified(_, qual) => match &**qual {
                Qualifier::ValCompare(_, op, n) => {
                    assert_eq!(*op, CmpOp::Ge);
                    assert_eq!(*n, 21.0);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn explicit_val_test() {
        let q = parse("stock[buy/val() < 100]").unwrap();
        assert!(q.has_qualifier());
        let q = parse("stock[buy/val() != 80]").unwrap();
        match &q.path {
            PathExpr::Qualified(_, qual) => {
                assert!(matches!(**qual, Qualifier::ValCompare(_, CmpOp::Ne, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn string_inequality_becomes_negated_equality() {
        let q = parse("client[country/text() != \"US\"]").unwrap();
        match &q.path {
            PathExpr::Qualified(_, qual) => assert!(matches!(**qual, Qualifier::Not(_))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_predicates_and_wildcards() {
        let q = parse("*/client[broker[market/name/text()='TSE']]/name").unwrap();
        assert!(q.has_qualifier());
        let q = parse("//*[qt > 50]").unwrap();
        assert!(q.has_qualifier());
        assert!(q.has_descendant_axis());
    }

    #[test]
    fn or_and_precedence() {
        // a or b and c  ==  a or (b and c)
        let q = parse("x[a or b and c]").unwrap();
        match &q.path {
            PathExpr::Qualified(_, qual) => match &**qual {
                Qualifier::Or(_, rhs) => assert!(matches!(**rhs, Qualifier::And(_, _))),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        // (a or b) and c
        let q = parse("x[(a or b) and c]").unwrap();
        match &q.path {
            PathExpr::Qualified(_, qual) => assert!(matches!(**qual, Qualifier::And(_, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unicode_connectives_parse() {
        let q =
            parse("//broker[//stock/code/text()=\"goog\" ∧ ¬(//stock/code/text()=\"yhoo\")]/name");
        assert!(q.is_ok());
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(matches!(parse(""), Err(XPathError::EmptyQuery)));
        assert!(parse("a[").is_err());
        assert!(parse("a]").is_err());
        assert!(parse("a[b").is_err());
        assert!(parse("a[text() 3]").is_err());
        assert!(parse("a[text() = ]").is_err());
        assert!(parse("/a/").is_err());
        assert!(parse("a b").is_err());
        assert!(parse("a[val() = 'x']").is_err());
        assert!(parse("a[age < 'x']").is_err());
    }

    #[test]
    fn rejects_text_in_selection_path() {
        assert!(matches!(
            parse("client/name/text()"),
            Err(XPathError::TestOutsideQualifier { .. })
        ));
        assert!(matches!(parse("a/val()"), Err(XPathError::TestOutsideQualifier { .. })));
    }

    #[test]
    fn text_test_on_context_node() {
        let q = parse("code[text()='GOOG']").unwrap();
        match &q.path {
            PathExpr::Qualified(_, qual) => match &**qual {
                Qualifier::TextEquals(p, s) => {
                    assert_eq!(*p, PathExpr::Empty);
                    assert_eq!(s, "GOOG");
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wildcard_and_dot_steps() {
        let q = parse("./*/name").unwrap();
        assert!(!q.absolute);
        assert_eq!(q.to_string(), "./*/name");
    }

    #[test]
    fn display_round_trips_reparse_to_same_ast() {
        for text in [
            "/sites/site/people/person",
            "/sites/site/open_auctions//annotation",
            "//broker[//stock/code/text() = \"goog\"]/name",
            "client[country/text() = \"US\"]/broker/name",
            "person[profile/age > 20 and address/country/text() = \"US\"]/creditcard",
            "x[a or not(b and c)]",
        ] {
            let q1 = parse(text).unwrap();
            let q2 = parse(&q1.to_string()).unwrap();
            assert_eq!(q1, q2, "round-trip failed for {text}");
        }
    }
}

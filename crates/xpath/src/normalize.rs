//! Normalization of X queries into the paper's normal form (§2.2):
//!
//! every query becomes a sequence `β₁/…/βₙ` where each `βᵢ` is a label `A`,
//! the wildcard `∗`, the descendant-or-self marker `//`, or a qualifier item
//! `ε[q]`, and consecutive `ε[q]` items are merged into a single one whose
//! qualifier is the conjunction of the originals.
//!
//! Qualifiers are normalized the same way; `Q/text() = "str"` becomes
//! `normalize(Q)/ε[text() = "str"]` and `Q/val() op n` becomes
//! `normalize(Q)/ε[val() op n]`, exactly as in the paper's `normalize(·)`
//! rules.

use crate::ast::{CmpOp, PathExpr, PosPred, Qualifier, Query};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One item `βᵢ` of a normalized path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NormItem {
    /// A label test `A`.
    Label(String),
    /// The wildcard `∗`.
    Wildcard,
    /// The descendant-or-self marker `//`.
    DescendantOrSelf,
    /// A qualifier item `ε[q]`.
    Qualifier(NormQual),
    /// A positional predicate on the step item preceding it. Normalization
    /// canonicalizes predicate order: position items always come directly
    /// after their step (before any qualifier items of the same step), which
    /// is sound because positional counting is independent of the step's
    /// other predicates.
    Position(PosPred),
}

/// A normalized path: the sequence of items.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct NormPath {
    /// The items `β₁ … βₙ`.
    pub items: Vec<NormItem>,
}

/// A normalized qualifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NormQual {
    /// Existence of a downward path from the context node. The atomic tests
    /// `text() = s` / `val() op n` appear as trailing `ε[…]` items of this
    /// path, mirroring the paper's normal form.
    Path(NormPath),
    /// `text() = "str"` at the context node: some text child of the context
    /// node carries exactly this string.
    TextIs(String),
    /// `val() op num` at the context node: some text child of the context
    /// node parses as a number satisfying the comparison.
    ValIs(CmpOp, f64),
    /// `@attr` at the context node: the context node carries the attribute.
    HasAttr(String),
    /// `@attr = "str"` at the context node: the attribute exists and has
    /// exactly this string value.
    AttrIs(String, String),
    /// `@attr op num` at the context node: the attribute exists and parses
    /// as a number satisfying the comparison.
    AttrCmp(String, CmpOp, f64),
    /// Negation.
    Not(Box<NormQual>),
    /// Conjunction (flattened).
    And(Vec<NormQual>),
    /// Disjunction (flattened).
    Or(Vec<NormQual>),
}

/// A normalized query: the normalized path plus the absolute/relative flag.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NormQuery {
    /// Was the query absolute (leading `/` or `//`)?
    pub absolute: bool,
    /// The normalized path.
    pub path: NormPath,
}

/// Normalize a parsed query. Runs in time linear in `|Q|`.
pub fn normalize(query: &Query) -> NormQuery {
    let mut items = Vec::new();
    normalize_path(&query.path, &mut items);
    let items = merge_qualifier_runs(items);
    NormQuery { absolute: query.absolute, path: NormPath { items } }
}

/// Normalize a bare qualifier (used by tests and by Boolean-query helpers).
pub fn normalize_qualifier(q: &Qualifier) -> NormQual {
    norm_qual(q)
}

fn normalize_path(path: &PathExpr, out: &mut Vec<NormItem>) {
    match path {
        PathExpr::Empty => {
            // ε contributes no item: it is the identity of `/`.
        }
        PathExpr::Label(l) => out.push(NormItem::Label(l.clone())),
        PathExpr::Wildcard => out.push(NormItem::Wildcard),
        PathExpr::Child(a, b) => {
            normalize_path(a, out);
            normalize_path(b, out);
        }
        PathExpr::Descendant(a, b) => {
            normalize_path(a, out);
            out.push(NormItem::DescendantOrSelf);
            normalize_path(b, out);
        }
        PathExpr::Qualified(p, q) => {
            normalize_path(p, out);
            match &**q {
                Qualifier::Position(pred) => {
                    // Canonical order: the position item goes directly after
                    // its step, in front of any qualifier items already
                    // attached to it (`a[q][2]` and `a[2][q]` normalize
                    // identically; qualifier runs can then still merge).
                    let mut at = out.len();
                    while at > 0 && matches!(out[at - 1], NormItem::Qualifier(_)) {
                        at -= 1;
                    }
                    out.insert(at, NormItem::Position(*pred));
                }
                other => out.push(NormItem::Qualifier(norm_qual(other))),
            }
        }
    }
}

fn norm_qual(q: &Qualifier) -> NormQual {
    match q {
        Qualifier::Path(p) => {
            let mut items = Vec::new();
            normalize_path(p, &mut items);
            let items = merge_qualifier_runs(items);
            if items.is_empty() {
                // `[.]` — trivially true.
                NormQual::And(Vec::new())
            } else {
                NormQual::Path(NormPath { items })
            }
        }
        Qualifier::TextEquals(p, s) => {
            let mut items = Vec::new();
            normalize_path(p, &mut items);
            if items.is_empty() {
                NormQual::TextIs(s.clone())
            } else {
                items.push(NormItem::Qualifier(NormQual::TextIs(s.clone())));
                NormQual::Path(NormPath { items: merge_qualifier_runs(items) })
            }
        }
        Qualifier::ValCompare(p, op, n) => {
            let mut items = Vec::new();
            normalize_path(p, &mut items);
            if items.is_empty() {
                NormQual::ValIs(*op, *n)
            } else {
                items.push(NormItem::Qualifier(NormQual::ValIs(*op, *n)));
                NormQual::Path(NormPath { items: merge_qualifier_runs(items) })
            }
        }
        Qualifier::HasAttr(p, a) => {
            let mut items = Vec::new();
            normalize_path(p, &mut items);
            if items.is_empty() {
                NormQual::HasAttr(a.clone())
            } else {
                items.push(NormItem::Qualifier(NormQual::HasAttr(a.clone())));
                NormQual::Path(NormPath { items: merge_qualifier_runs(items) })
            }
        }
        Qualifier::AttrEquals(p, a, s) => {
            let mut items = Vec::new();
            normalize_path(p, &mut items);
            if items.is_empty() {
                NormQual::AttrIs(a.clone(), s.clone())
            } else {
                items.push(NormItem::Qualifier(NormQual::AttrIs(a.clone(), s.clone())));
                NormQual::Path(NormPath { items: merge_qualifier_runs(items) })
            }
        }
        Qualifier::AttrCompare(p, a, op, n) => {
            let mut items = Vec::new();
            normalize_path(p, &mut items);
            if items.is_empty() {
                NormQual::AttrCmp(a.clone(), *op, *n)
            } else {
                items.push(NormItem::Qualifier(NormQual::AttrCmp(a.clone(), *op, *n)));
                NormQual::Path(NormPath { items: merge_qualifier_runs(items) })
            }
        }
        Qualifier::Position(_) => {
            // A bare position used as a Boolean qualifier has no context to
            // count in; the parser never produces this shape (positions are
            // attached to steps), so treat it as trivially true.
            debug_assert!(false, "Qualifier::Position outside a step");
            NormQual::And(Vec::new())
        }
        Qualifier::Not(inner) => NormQual::Not(Box::new(norm_qual(inner))),
        Qualifier::And(a, b) => {
            let mut parts = Vec::new();
            flatten_and(a, &mut parts);
            flatten_and(b, &mut parts);
            NormQual::And(parts)
        }
        Qualifier::Or(a, b) => {
            let mut parts = Vec::new();
            flatten_or(a, &mut parts);
            flatten_or(b, &mut parts);
            NormQual::Or(parts)
        }
    }
}

fn flatten_and(q: &Qualifier, out: &mut Vec<NormQual>) {
    match q {
        Qualifier::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(norm_qual(other)),
    }
}

fn flatten_or(q: &Qualifier, out: &mut Vec<NormQual>) {
    match q {
        Qualifier::Or(a, b) => {
            flatten_or(a, out);
            flatten_or(b, out);
        }
        other => out.push(norm_qual(other)),
    }
}

/// The paper's last normalization rule: a run `ε[q₁]/…/ε[qₖ]` collapses into
/// a single `ε[q₁ ∧ … ∧ qₖ]`.
fn merge_qualifier_runs(items: Vec<NormItem>) -> Vec<NormItem> {
    let mut out: Vec<NormItem> = Vec::with_capacity(items.len());
    for item in items {
        match (out.last_mut(), item) {
            (Some(NormItem::Qualifier(existing)), NormItem::Qualifier(new)) => {
                let merged = match std::mem::replace(existing, NormQual::And(Vec::new())) {
                    NormQual::And(mut parts) => {
                        match new {
                            NormQual::And(more) => parts.extend(more),
                            other => parts.push(other),
                        }
                        NormQual::And(parts)
                    }
                    prev => {
                        let mut parts = vec![prev];
                        match new {
                            NormQual::And(more) => parts.extend(more),
                            other => parts.push(other),
                        }
                        NormQual::And(parts)
                    }
                };
                *existing = merged;
            }
            (_, item) => out.push(item),
        }
    }
    out
}

impl NormPath {
    /// The *selection path* of the paper: the items with every qualifier
    /// (and positional predicate) struck out — only labels, wildcards and
    /// `//` remain.
    pub fn selection_items(&self) -> Vec<&NormItem> {
        self.items
            .iter()
            .filter(|i| !matches!(i, NormItem::Qualifier(_) | NormItem::Position(_)))
            .collect()
    }

    /// Does the path contain any qualifier item (at the top level)?
    pub fn has_qualifier(&self) -> bool {
        self.items.iter().any(|i| matches!(i, NormItem::Qualifier(_)))
    }

    /// Does the path contain a positional predicate (at the top level)?
    pub fn has_position(&self) -> bool {
        self.items.iter().any(|i| matches!(i, NormItem::Position(_)))
    }

    /// Does the path contain a `//` item (at the top level, not inside
    /// qualifiers)?
    pub fn has_descendant(&self) -> bool {
        self.items.iter().any(|i| matches!(i, NormItem::DescendantOrSelf))
    }
}

impl fmt::Display for NormItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormItem::Label(l) => write!(f, "{l}"),
            NormItem::Wildcard => write!(f, "*"),
            NormItem::DescendantOrSelf => write!(f, "//"),
            NormItem::Qualifier(q) => write!(f, "e[{q}]"),
            NormItem::Position(p) => write!(f, "pos({p})"),
        }
    }
}

impl fmt::Display for NormPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for item in &self.items {
            if !first && !matches!(item, NormItem::DescendantOrSelf) {
                write!(f, "/")?;
            }
            // `//` already carries its separating role.
            if matches!(item, NormItem::DescendantOrSelf) {
                write!(f, "//")?;
                first = true;
                continue;
            }
            write!(f, "{item}")?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Display for NormQual {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormQual::Path(p) => write!(f, "{p}"),
            NormQual::TextIs(s) => write!(f, "text() = \"{s}\""),
            NormQual::ValIs(op, n) => write!(f, "val() {op} {n}"),
            NormQual::HasAttr(a) => write!(f, "@{a}"),
            NormQual::AttrIs(a, s) => write!(f, "@{a} = \"{s}\""),
            NormQual::AttrCmp(a, op, n) => write!(f, "@{a} {op} {n}"),
            NormQual::Not(q) => write!(f, "not({q})"),
            NormQual::And(qs) => {
                if qs.is_empty() {
                    return write!(f, "true");
                }
                write!(f, "(")?;
                for (i, q) in qs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    write!(f, "{q}")?;
                }
                write!(f, ")")
            }
            NormQual::Or(qs) => {
                write!(f, "(")?;
                for (i, q) in qs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " or ")?;
                    }
                    write!(f, "{q}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for NormQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let leading_descendant =
            matches!(self.path.items.first(), Some(NormItem::DescendantOrSelf));
        if self.absolute && !leading_descendant {
            write!(f, "/")?;
        }
        write!(f, "{}", self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn norm(text: &str) -> NormQuery {
        normalize(&parse(text).unwrap())
    }

    #[test]
    fn example_2_1_normal_form() {
        // normalize(Q) = client/ε[country/ε[text()="us"]]/broker/
        //                ε[market/name/ε[text()="nasdaq"]]/name
        let n =
            norm("client[country/text() = \"US\"]/broker[market/name/text() = \"NASDAQ\"]/name");
        let items = &n.path.items;
        assert_eq!(items.len(), 5);
        assert_eq!(items[0], NormItem::Label("client".into()));
        assert!(matches!(items[1], NormItem::Qualifier(_)));
        assert_eq!(items[2], NormItem::Label("broker".into()));
        assert!(matches!(items[3], NormItem::Qualifier(_)));
        assert_eq!(items[4], NormItem::Label("name".into()));

        // The first qualifier is country/ε[text()="US"].
        if let NormItem::Qualifier(NormQual::Path(p)) = &items[1] {
            assert_eq!(p.items.len(), 2);
            assert_eq!(p.items[0], NormItem::Label("country".into()));
            assert!(matches!(&p.items[1], NormItem::Qualifier(NormQual::TextIs(s)) if s == "US"));
        } else {
            panic!("expected a path qualifier, got {:?}", items[1]);
        }

        // Striking out qualifiers leaves the selection path client/broker/name.
        let sel: Vec<String> = n.path.selection_items().iter().map(|i| i.to_string()).collect();
        assert_eq!(sel, vec!["client", "broker", "name"]);
    }

    #[test]
    fn consecutive_qualifiers_merge() {
        let n = norm("client[a][b]/name");
        let items = &n.path.items;
        assert_eq!(items.len(), 3);
        match &items[1] {
            NormItem::Qualifier(NormQual::And(parts)) => assert_eq!(parts.len(), 2),
            other => panic!("expected merged qualifier, got {other:?}"),
        }
    }

    #[test]
    fn qualifier_on_dot_merges_with_preceding_step_qualifier() {
        // a[x]/.[y] has the ε collapse away leaving a run of two qualifiers.
        let n = norm("a[x]/.[y]");
        assert_eq!(n.path.items.len(), 2);
        match &n.path.items[1] {
            NormItem::Qualifier(NormQual::And(parts)) => assert_eq!(parts.len(), 2),
            other => panic!("expected merged qualifier, got {other:?}"),
        }
    }

    #[test]
    fn descendant_axis_becomes_separate_item() {
        let n = norm("/sites/site/open_auctions//annotation");
        let kinds: Vec<String> = n.path.items.iter().map(|i| i.to_string()).collect();
        assert_eq!(kinds, vec!["sites", "site", "open_auctions", "//", "annotation"]);
        assert!(n.path.has_descendant());
        assert!(!n.path.has_qualifier());
        assert!(n.absolute);
    }

    #[test]
    fn leading_descendant_in_absolute_query() {
        let n = norm("//broker/name");
        let kinds: Vec<String> = n.path.items.iter().map(|i| i.to_string()).collect();
        assert_eq!(kinds, vec!["//", "broker", "name"]);
    }

    #[test]
    fn text_comparison_becomes_trailing_epsilon_item() {
        let n = norm("x[code/text() = \"GOOG\"]");
        match &n.path.items[1] {
            NormItem::Qualifier(NormQual::Path(p)) => {
                assert_eq!(p.items.len(), 2);
                assert!(
                    matches!(&p.items[1], NormItem::Qualifier(NormQual::TextIs(s)) if s == "GOOG")
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn val_comparison_on_context_node() {
        let n = norm("person[profile/age > 20]");
        match &n.path.items[1] {
            NormItem::Qualifier(NormQual::Path(p)) => match p.items.last().unwrap() {
                NormItem::Qualifier(NormQual::ValIs(op, num)) => {
                    assert_eq!(*op, CmpOp::Gt);
                    assert_eq!(*num, 20.0);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn boolean_connectives_flatten() {
        let n = norm("x[a and b and c or d]");
        match &n.path.items[1] {
            NormItem::Qualifier(NormQual::Or(parts)) => {
                assert_eq!(parts.len(), 2);
                match &parts[0] {
                    NormQual::And(ps) => assert_eq!(ps.len(), 3),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negation_is_preserved() {
        let n = norm(
            "//broker[//stock/code/text()=\"goog\" and not(//stock/code/text()=\"yhoo\")]/name",
        );
        match &n.path.items[2] {
            NormItem::Qualifier(NormQual::And(parts)) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], NormQual::Not(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dot_only_query_normalizes_to_empty_path() {
        let n = norm(".");
        assert!(n.path.items.is_empty());
        let n = norm(".[a]");
        assert_eq!(n.path.items.len(), 1);
    }

    #[test]
    fn display_of_normal_form_is_informative() {
        let n = norm("client[country/text() = \"US\"]/name");
        let s = n.to_string();
        assert!(s.contains("client"));
        assert!(s.contains("e["));
        assert!(s.contains("text() = \"US\""));
        let n = norm("//a/b");
        assert_eq!(n.to_string(), "//a/b");
    }

    #[test]
    fn text_is_on_context_via_dot() {
        let n = norm("code[text() = 'GOOG']");
        match &n.path.items[1] {
            NormItem::Qualifier(NormQual::TextIs(s)) => assert_eq!(s, "GOOG"),
            other => panic!("unexpected {other:?}"),
        }
    }
}

//! Tokenizer for the concrete XPath syntax accepted by [`crate::parse`].
//!
//! The concrete syntax follows the paper's notation with ASCII spellings:
//!
//! * axes: `/`, `//`
//! * steps: names, `*`, `.` (the paper's ε)
//! * qualifiers: `[` … `]`, `text()`, `val()`, string literals in single or
//!   double quotes, numbers, comparison operators `= != < <= > >=`
//! * Boolean connectives: `and` / `&&` / `∧`, `or` / `||` / `∨`,
//!   `not(...)` / `!` / `¬`

use crate::error::{XPathError, XPathResult};
use crate::CmpOp;

/// A lexical token together with its byte offset in the input.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset where the token starts (for error messages).
    pub offset: usize,
    /// The token itself.
    pub kind: TokenKind,
}

/// The kinds of tokens produced by the lexer.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `.`
    Dot,
    /// `@` (attribute step)
    At,
    /// `::` (axis separator)
    DoubleColon,
    /// A name (element label, or the keywords `and`, `or`, `not`, `text`, `val`).
    Name(String),
    /// A quoted string literal (quotes removed).
    Str(String),
    /// A numeric literal.
    Number(f64),
    /// A comparison operator.
    Cmp(CmpOp),
    /// `and` connective (any spelling).
    And,
    /// `or` connective (any spelling).
    Or,
    /// `not` / `!` / `¬`.
    Not,
    /// End of input.
    Eof,
}

/// Tokenize the whole input.
pub fn tokenize(input: &str) -> XPathResult<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    // Track byte offset separately from char index for error reporting.
    let mut byte = 0usize;

    while i < chars.len() {
        let c = chars[i];
        let start_byte = byte;
        let advance = |n: usize, i: &mut usize, byte: &mut usize, chars: &[char]| {
            for _ in 0..n {
                *byte += chars[*i].len_utf8();
                *i += 1;
            }
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                advance(1, &mut i, &mut byte, &chars);
            }
            '/' => {
                if chars.get(i + 1) == Some(&'/') {
                    advance(2, &mut i, &mut byte, &chars);
                    tokens.push(Token { offset: start_byte, kind: TokenKind::DoubleSlash });
                } else {
                    advance(1, &mut i, &mut byte, &chars);
                    tokens.push(Token { offset: start_byte, kind: TokenKind::Slash });
                }
            }
            '[' => {
                advance(1, &mut i, &mut byte, &chars);
                tokens.push(Token { offset: start_byte, kind: TokenKind::LBracket });
            }
            ']' => {
                advance(1, &mut i, &mut byte, &chars);
                tokens.push(Token { offset: start_byte, kind: TokenKind::RBracket });
            }
            '(' => {
                advance(1, &mut i, &mut byte, &chars);
                tokens.push(Token { offset: start_byte, kind: TokenKind::LParen });
            }
            ')' => {
                advance(1, &mut i, &mut byte, &chars);
                tokens.push(Token { offset: start_byte, kind: TokenKind::RParen });
            }
            '*' => {
                advance(1, &mut i, &mut byte, &chars);
                tokens.push(Token { offset: start_byte, kind: TokenKind::Star });
            }
            '.' if !chars.get(i + 1).map(|c| c.is_ascii_digit()).unwrap_or(false) => {
                advance(1, &mut i, &mut byte, &chars);
                tokens.push(Token { offset: start_byte, kind: TokenKind::Dot });
            }
            '@' => {
                advance(1, &mut i, &mut byte, &chars);
                tokens.push(Token { offset: start_byte, kind: TokenKind::At });
            }
            ':' if chars.get(i + 1) == Some(&':') => {
                advance(2, &mut i, &mut byte, &chars);
                tokens.push(Token { offset: start_byte, kind: TokenKind::DoubleColon });
            }
            '∧' => {
                advance(1, &mut i, &mut byte, &chars);
                tokens.push(Token { offset: start_byte, kind: TokenKind::And });
            }
            '∨' => {
                advance(1, &mut i, &mut byte, &chars);
                tokens.push(Token { offset: start_byte, kind: TokenKind::Or });
            }
            '¬' => {
                advance(1, &mut i, &mut byte, &chars);
                tokens.push(Token { offset: start_byte, kind: TokenKind::Not });
            }
            '&' => {
                if chars.get(i + 1) == Some(&'&') {
                    advance(2, &mut i, &mut byte, &chars);
                    tokens.push(Token { offset: start_byte, kind: TokenKind::And });
                } else {
                    return Err(XPathError::UnexpectedChar { offset: start_byte, found: '&' });
                }
            }
            '|' => {
                if chars.get(i + 1) == Some(&'|') {
                    advance(2, &mut i, &mut byte, &chars);
                    tokens.push(Token { offset: start_byte, kind: TokenKind::Or });
                } else {
                    return Err(XPathError::UnexpectedChar { offset: start_byte, found: '|' });
                }
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    advance(2, &mut i, &mut byte, &chars);
                    tokens.push(Token { offset: start_byte, kind: TokenKind::Cmp(CmpOp::Ne) });
                } else {
                    advance(1, &mut i, &mut byte, &chars);
                    tokens.push(Token { offset: start_byte, kind: TokenKind::Not });
                }
            }
            '=' => {
                advance(1, &mut i, &mut byte, &chars);
                tokens.push(Token { offset: start_byte, kind: TokenKind::Cmp(CmpOp::Eq) });
            }
            '≠' => {
                advance(1, &mut i, &mut byte, &chars);
                tokens.push(Token { offset: start_byte, kind: TokenKind::Cmp(CmpOp::Ne) });
            }
            '≤' => {
                advance(1, &mut i, &mut byte, &chars);
                tokens.push(Token { offset: start_byte, kind: TokenKind::Cmp(CmpOp::Le) });
            }
            '≥' => {
                advance(1, &mut i, &mut byte, &chars);
                tokens.push(Token { offset: start_byte, kind: TokenKind::Cmp(CmpOp::Ge) });
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    advance(2, &mut i, &mut byte, &chars);
                    tokens.push(Token { offset: start_byte, kind: TokenKind::Cmp(CmpOp::Le) });
                } else {
                    advance(1, &mut i, &mut byte, &chars);
                    tokens.push(Token { offset: start_byte, kind: TokenKind::Cmp(CmpOp::Lt) });
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    advance(2, &mut i, &mut byte, &chars);
                    tokens.push(Token { offset: start_byte, kind: TokenKind::Cmp(CmpOp::Ge) });
                } else {
                    advance(1, &mut i, &mut byte, &chars);
                    tokens.push(Token { offset: start_byte, kind: TokenKind::Cmp(CmpOp::Gt) });
                }
            }
            '"' | '\'' => {
                let quote = c;
                advance(1, &mut i, &mut byte, &chars);
                let mut value = String::new();
                loop {
                    match chars.get(i) {
                        Some(&ch) if ch == quote => {
                            advance(1, &mut i, &mut byte, &chars);
                            break;
                        }
                        Some(&ch) => {
                            value.push(ch);
                            advance(1, &mut i, &mut byte, &chars);
                        }
                        None => return Err(XPathError::UnterminatedString { offset: start_byte }),
                    }
                }
                tokens.push(Token { offset: start_byte, kind: TokenKind::Str(value) });
            }
            c if c.is_ascii_digit()
                || (c == '-' && chars.get(i + 1).map(|c| c.is_ascii_digit()).unwrap_or(false))
                || (c == '.' && chars.get(i + 1).map(|c| c.is_ascii_digit()).unwrap_or(false))
                || c == '$' =>
            {
                // Numbers; a leading `$` (prices in the running example) is accepted
                // and ignored.
                let mut text = String::new();
                if c == '$' {
                    advance(1, &mut i, &mut byte, &chars);
                }
                while let Some(&ch) = chars.get(i) {
                    if ch.is_ascii_digit() || ch == '.' || (text.is_empty() && ch == '-') {
                        text.push(ch);
                        advance(1, &mut i, &mut byte, &chars);
                    } else {
                        break;
                    }
                }
                let value: f64 = text.parse().map_err(|_| XPathError::InvalidNumber {
                    offset: start_byte,
                    text: text.clone(),
                })?;
                tokens.push(Token { offset: start_byte, kind: TokenKind::Number(value) });
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut name = String::new();
                while let Some(&ch) = chars.get(i) {
                    // A single `:` stays part of a name (namespace-style
                    // labels); `::` is the axis separator and ends the name.
                    if ch == ':' && chars.get(i + 1) == Some(&':') {
                        break;
                    }
                    if ch.is_alphanumeric() || ch == '_' || ch == '-' || ch == ':' {
                        name.push(ch);
                        advance(1, &mut i, &mut byte, &chars);
                    } else {
                        break;
                    }
                }
                let kind = match name.as_str() {
                    "and" => TokenKind::And,
                    "or" => TokenKind::Or,
                    "not" => TokenKind::Not,
                    _ => TokenKind::Name(name),
                };
                tokens.push(Token { offset: start_byte, kind });
            }
            other => return Err(XPathError::UnexpectedChar { offset: start_byte, found: other }),
        }
    }
    tokens.push(Token { offset: byte, kind: TokenKind::Eof });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_simple_path() {
        assert_eq!(
            kinds("/sites/site/people"),
            vec![
                TokenKind::Slash,
                TokenKind::Name("sites".into()),
                TokenKind::Slash,
                TokenKind::Name("site".into()),
                TokenKind::Slash,
                TokenKind::Name("people".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn double_slash_star_and_dot() {
        assert_eq!(
            kinds("//open_auctions/*/."),
            vec![
                TokenKind::DoubleSlash,
                TokenKind::Name("open_auctions".into()),
                TokenKind::Slash,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Dot,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn qualifier_tokens_with_strings_and_numbers() {
        let k = kinds("[profile/age > 20 and address/country=\"US\"]");
        assert!(k.contains(&TokenKind::LBracket));
        assert!(k.contains(&TokenKind::Cmp(CmpOp::Gt)));
        assert!(k.contains(&TokenKind::Number(20.0)));
        assert!(k.contains(&TokenKind::And));
        assert!(k.contains(&TokenKind::Cmp(CmpOp::Eq)));
        assert!(k.contains(&TokenKind::Str("US".into())));
        assert!(k.contains(&TokenKind::RBracket));
    }

    #[test]
    fn unicode_connectives_are_accepted() {
        let k = kinds("a ∧ ¬ b ∨ c");
        assert_eq!(
            k,
            vec![
                TokenKind::Name("a".into()),
                TokenKind::And,
                TokenKind::Not,
                TokenKind::Name("b".into()),
                TokenKind::Or,
                TokenKind::Name("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn ascii_connectives_and_comparisons() {
        let k = kinds("a && b || !c != 3 <= 4 >= 5 < 6 > 7");
        assert!(k.contains(&TokenKind::And));
        assert!(k.contains(&TokenKind::Or));
        assert!(k.contains(&TokenKind::Not));
        assert!(k.contains(&TokenKind::Cmp(CmpOp::Ne)));
        assert!(k.contains(&TokenKind::Cmp(CmpOp::Le)));
        assert!(k.contains(&TokenKind::Cmp(CmpOp::Ge)));
        assert!(k.contains(&TokenKind::Cmp(CmpOp::Lt)));
        assert!(k.contains(&TokenKind::Cmp(CmpOp::Gt)));
    }

    #[test]
    fn string_literals_support_both_quote_styles() {
        assert_eq!(
            kinds("'goog' \"yhoo\""),
            vec![TokenKind::Str("goog".into()), TokenKind::Str("yhoo".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn numbers_accept_decimals_negatives_and_dollar_prefix() {
        assert_eq!(
            kinds("374 -2.5 $80 0.25"),
            vec![
                TokenKind::Number(374.0),
                TokenKind::Number(-2.5),
                TokenKind::Number(80.0),
                TokenKind::Number(0.25),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors_on_unterminated_string_and_bad_chars() {
        assert!(matches!(tokenize("'oops"), Err(XPathError::UnterminatedString { .. })));
        assert!(matches!(tokenize("a # b"), Err(XPathError::UnexpectedChar { found: '#', .. })));
        assert!(matches!(tokenize("a & b"), Err(XPathError::UnexpectedChar { found: '&', .. })));
    }

    #[test]
    fn text_and_val_are_plain_names_for_the_parser() {
        let k = kinds("code/text()='goog'");
        assert!(k.contains(&TokenKind::Name("text".into())));
        assert!(k.contains(&TokenKind::LParen));
        assert!(k.contains(&TokenKind::RParen));
    }
}

//! # paxml-xpath — the XPath fragment X of the paper
//!
//! Implements the query language of §2.2 of *Distributed Query Evaluation
//! with Performance Guarantees* (Cong, Fan, Kementsietsidis, SIGMOD 2007):
//!
//! ```text
//! Q := ε | A | * | Q//Q | Q/Q | Q[q]
//! q := Q | q/text() = str | q/val() op num | ¬q | q ∧ q | q ∨ q
//! ```
//!
//! The crate provides, in processing order:
//!
//! 1. [`parse`] — concrete syntax → surface AST ([`Query`], [`PathExpr`],
//!    [`Qualifier`]).
//! 2. [`normalize`](normalize()) — surface AST → the paper's normal form
//!    `β₁/…/βₙ` ([`NormQuery`]).
//! 3. [`compile`](compile()) — normal form → the vector representation
//!    ([`CompiledQuery`]: `SVect(Q)` selection items and `QVect(Q)`
//!    qualifier sub-queries).
//! 4. [`eval`] — the generic single-pass evaluators (bottom-up qualifier
//!    pass, top-down selection pass, PaX2 combined pass), parameterised over
//!    the residual-variable type so the distributed layer can reuse them.
//! 5. [`centralized`] — the reference `O(|T|·|Q|)` two-pass evaluator, and
//!    [`semantics`] — a naive set-based oracle used only for testing.
//!
//! ```
//! use paxml_xml::TreeBuilder;
//! use paxml_xpath::centralized;
//!
//! let tree = TreeBuilder::new("clientele")
//!     .open("client").leaf("name", "Anna").leaf("country", "US").close()
//!     .open("client").leaf("name", "Lisa").leaf("country", "Canada").close()
//!     .build();
//! let result = centralized::evaluate(&tree, "client[country/text()='US']/name").unwrap();
//! assert_eq!(result.answers.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod ast;
pub mod centralized;
mod compile;
mod error;
pub mod eval;
mod lexer;
mod normalize;
mod parser;
pub mod semantics;

pub use ast::{CmpOp, PathExpr, PosPred, Qualifier, Query};
pub use compile::{
    compile, compile_with_cache, CompileCache, CompiledQuery, PosFilter, PosTest, QAxis, QEntry,
    QEntryId, SelItem, SelPos,
};
pub use error::{XPathError, XPathResult};
pub use normalize::{normalize, normalize_qualifier, NormItem, NormPath, NormQual, NormQuery};
pub use parser::parse;

/// Parse, normalize and compile a query in one call — the form every
/// downstream crate uses.
pub fn compile_text(query_text: &str) -> XPathResult<CompiledQuery> {
    compile(&normalize(&parse(query_text)?))
}

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn compile_text_pipeline() {
        let c = compile_text("/sites/site/people/person").unwrap();
        assert_eq!(c.selection_steps(), vec!["sites", "site", "people", "person"]);
        assert!(compile_text("").is_err());
        assert!(compile_text("a[[").is_err());
    }
}

//! The centralized two-pass evaluator.
//!
//! This is the `O(|T|·|Q|)` algorithm the paper uses as its reference point
//! (\[11\] Gottlob–Koch–Pichler style): one bottom-up pass to evaluate all
//! qualifier sub-queries and one top-down pass to evaluate the selection
//! path. It is used
//!
//! * directly, as the local evaluation step of the `NaiveCentralized`
//!   baseline (ship every fragment to the query site, reassemble, evaluate),
//! * as the correctness oracle for the distributed algorithms (together with
//!   the even simpler [`crate::semantics`] evaluator), and
//! * to measure the "best-known centralized algorithm" cost that the paper's
//!   *total computation* guarantee is stated against.

use crate::compile::{compile, CompiledQuery, QEntryId};
use crate::error::XPathResult;
use crate::eval::{evaluation_context, initial_vector, qualifier_pass, selection_pass};
use crate::normalize::normalize;
use crate::parse;
use crate::Query;
use paxml_boolex::{BoolExpr, CompactVector};
use paxml_xml::{NodeId, XmlTree};
use serde::{Deserialize, Serialize};

/// Variables never occur in centralized evaluation; this uninhabited-in-
/// practice type documents that (we use `u8` rather than an empty enum so
/// the vectors stay serializable without extra bounds).
type NoVar = u8;

/// Outcome of a centralized evaluation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CentralizedResult {
    /// The answer nodes, in document order.
    pub answers: Vec<NodeId>,
    /// Elementary operations performed (nodes visited × vector entries) —
    /// the unit in which the paper states its computation bounds.
    pub ops: u64,
}

/// Evaluate a compiled query over a whole (unfragmented) tree.
pub fn evaluate_compiled(tree: &XmlTree, query: &CompiledQuery) -> CentralizedResult {
    let mut ops = 0u64;

    // Pass 1 — qualifiers (skipped entirely when the query has none, just as
    // PaX3/PaX2 skip their Stage 1).
    let qual = if query.has_qualifiers() {
        let out = qualifier_pass::<NoVar>(tree, tree.root(), query, |_| {
            unreachable!("an unfragmented tree has no virtual nodes")
        });
        ops += out.ops;
        Some(out)
    } else {
        None
    };

    // Pass 2 — selection path. The init vector carries the root's own
    // positional facts after the SVect entries (empty tail for queries
    // without positional predicates).
    let root_label = tree.label(tree.root()).unwrap_or_default().to_string();
    let init: CompactVector<NoVar> = CompactVector::from_bools(&initial_vector(query, &root_label));
    let context = evaluation_context(query, tree.root());
    let mut qual_value = |v: NodeId, e: QEntryId| -> BoolExpr<NoVar> {
        match &qual {
            Some(q) => q.node_qv[v.index()]
                .as_ref()
                .expect("qualifier pass covered every reachable node")
                .expr(e),
            None => BoolExpr::constant(false),
        }
    };
    let sel = selection_pass::<NoVar>(tree, tree.root(), query, init, context, &mut qual_value);
    ops += sel.ops;
    debug_assert!(sel.candidates.is_empty(), "no residual candidates without fragmentation");

    let mut answers = sel.answers;
    answers.sort();
    CentralizedResult { answers, ops }
}

/// Parse, normalize, compile and evaluate a query given as text.
pub fn evaluate(tree: &XmlTree, query_text: &str) -> XPathResult<CentralizedResult> {
    let query = parse(query_text)?;
    Ok(evaluate_query(tree, &query))
}

/// Normalize, compile and evaluate an already-parsed query.
pub fn evaluate_query(tree: &XmlTree, query: &Query) -> CentralizedResult {
    let compiled = compile(&normalize(query)).expect("parsed queries always compile");
    evaluate_compiled(tree, &compiled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxml_xml::TreeBuilder;

    fn clientele() -> XmlTree {
        // The full Fig. 1 tree (three clients, four markets).
        TreeBuilder::new("clientele")
            .open("client")
            .leaf("name", "Anna")
            .leaf("country", "US")
            .open("broker")
            .leaf("name", "E*trade")
            .open("market")
            .leaf("name", "NYSE")
            .open("stock")
            .leaf("code", "IBM")
            .leaf("buy", "$80")
            .leaf("qt", "50")
            .close()
            .close()
            .open("market")
            .leaf("name", "NASDAQ")
            .open("stock")
            .leaf("code", "YHOO")
            .leaf("buy", "$33")
            .leaf("qt", "40")
            .close()
            .open("stock")
            .leaf("code", "GOOG")
            .leaf("buy", "$374")
            .leaf("qt", "75")
            .close()
            .close()
            .close()
            .close()
            .open("client")
            .leaf("name", "Kim")
            .leaf("country", "US")
            .open("broker")
            .leaf("name", "Bache")
            .open("market")
            .leaf("name", "NASDAQ")
            .open("stock")
            .leaf("code", "GOOG")
            .leaf("buy", "$370")
            .leaf("qt", "40")
            .close()
            .close()
            .close()
            .close()
            .open("client")
            .leaf("name", "Lisa")
            .leaf("country", "Canada")
            .open("broker")
            .leaf("name", "CIBC")
            .open("market")
            .leaf("name", "TSE")
            .open("stock")
            .leaf("code", "GOOG")
            .leaf("buy", "$382")
            .leaf("qt", "90")
            .close()
            .close()
            .close()
            .close()
            .build()
    }

    fn texts(tree: &XmlTree, nodes: &[NodeId]) -> Vec<String> {
        nodes.iter().map(|n| tree.text_of(*n).unwrap_or_default()).collect()
    }

    #[test]
    fn relative_path_selects_client_names() {
        let tree = clientele();
        let r = evaluate(&tree, "client/name").unwrap();
        assert_eq!(texts(&tree, &r.answers), vec!["Anna", "Kim", "Lisa"]);
    }

    #[test]
    fn example_2_1_selects_nasdaq_brokers_of_us_clients() {
        let tree = clientele();
        let r = evaluate(
            &tree,
            "client[country/text() = \"US\"]/broker[market/name/text() = \"NASDAQ\"]/name",
        )
        .unwrap();
        assert_eq!(texts(&tree, &r.answers), vec!["E*trade", "Bache"]);
    }

    #[test]
    fn introduction_query_goog_but_not_yhoo() {
        let tree = clientele();
        // Brokers trading GOOG but not YHOO: Bache (Kim) and CIBC (Lisa);
        // E*trade trades both so it is excluded.
        let r = evaluate(
            &tree,
            "//broker[//stock/code/text()=\"goog\" or //stock/code/text()=\"GOOG\"]\
             [not(//stock/code/text()=\"YHOO\")]/name",
        )
        .unwrap();
        assert_eq!(texts(&tree, &r.answers), vec!["Bache", "CIBC"]);
    }

    #[test]
    fn boolean_query_as_qualifier_on_root() {
        let tree = clientele();
        // [//stock/code/text() = "GOOG"] — true at the root, so the root is
        // selected; with a code that does not exist the answer is empty.
        let r = evaluate(&tree, ".[//stock/code/text()=\"GOOG\"]").unwrap();
        assert_eq!(r.answers, vec![tree.root()]);
        let r = evaluate(&tree, ".[//stock/code/text()=\"MSFT\"]").unwrap();
        assert!(r.answers.is_empty());
    }

    #[test]
    fn val_comparisons_on_prices_and_quantities() {
        let tree = clientele();
        let r = evaluate(&tree, "//stock[buy/val() > 380]/code").unwrap();
        assert_eq!(texts(&tree, &r.answers), vec!["GOOG"]); // only Lisa's $382
        let r = evaluate(&tree, "//stock[qt >= 50]/code").unwrap();
        assert_eq!(texts(&tree, &r.answers), vec!["IBM", "GOOG", "GOOG"]);
        let r = evaluate(&tree, "//stock[buy/val() <= 33]/code").unwrap();
        assert_eq!(texts(&tree, &r.answers), vec!["YHOO"]);
    }

    #[test]
    fn absolute_query_anchors_at_the_root_element() {
        let tree = clientele();
        let r = evaluate(&tree, "/clientele/client/name").unwrap();
        assert_eq!(r.answers.len(), 3);
        // A wrong root label selects nothing.
        let r = evaluate(&tree, "/portfolio/client/name").unwrap();
        assert!(r.answers.is_empty());
    }

    #[test]
    fn descendant_axis_in_the_middle_of_a_path() {
        let tree = clientele();
        let r = evaluate(&tree, "client//code").unwrap();
        assert_eq!(r.answers.len(), 5);
        let r = evaluate(&tree, "client//market/name").unwrap();
        assert_eq!(texts(&tree, &r.answers), vec!["NYSE", "NASDAQ", "NASDAQ", "TSE"]);
    }

    #[test]
    fn wildcard_steps() {
        let tree = clientele();
        let r = evaluate(&tree, "client/*/name").unwrap();
        // name children of any child of client: the broker names.
        assert_eq!(texts(&tree, &r.answers), vec!["E*trade", "Bache", "CIBC"]);
    }

    #[test]
    fn disjunction_and_negation_in_qualifiers() {
        let tree = clientele();
        let r = evaluate(&tree, "client[country/text()=\"Canada\" or country/text()=\"US\"]/name")
            .unwrap();
        assert_eq!(r.answers.len(), 3);
        let r = evaluate(&tree, "client[not(country/text()=\"US\")]/name").unwrap();
        assert_eq!(texts(&tree, &r.answers), vec!["Lisa"]);
    }

    #[test]
    fn queries_with_no_answers_report_zero_but_still_do_work() {
        let tree = clientele();
        let r = evaluate(&tree, "client/nonexistent").unwrap();
        assert!(r.answers.is_empty());
        assert!(r.ops > 0);
    }

    #[test]
    fn ops_scale_with_tree_size() {
        let tree = clientele();
        let small = evaluate(&tree, "client/name").unwrap();
        let mut big_builder = TreeBuilder::new("clientele");
        for _ in 0..10 {
            big_builder = big_builder.subtree(&tree);
        }
        let big_tree = big_builder.build();
        let big = evaluate(&big_tree, "clientele/client/name").unwrap();
        assert!(big.ops > small.ops * 5);
    }
}

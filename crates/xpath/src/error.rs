//! Error types for XPath parsing and compilation.

use std::fmt;

/// Result alias for the crate.
pub type XPathResult<T> = Result<T, XPathError>;

/// Errors raised while lexing, parsing or compiling a query.
#[derive(Debug, Clone, PartialEq)]
pub enum XPathError {
    /// A character that cannot start any token.
    UnexpectedChar {
        /// Byte offset of the character.
        offset: usize,
        /// The offending character.
        found: char,
    },
    /// A string literal without a closing quote.
    UnterminatedString {
        /// Byte offset of the opening quote.
        offset: usize,
    },
    /// A numeric literal that does not parse.
    InvalidNumber {
        /// Byte offset of the literal.
        offset: usize,
        /// The text that failed to parse.
        text: String,
    },
    /// A token that does not fit the grammar at this position.
    UnexpectedToken {
        /// Byte offset of the token.
        offset: usize,
        /// Description of the token found.
        found: String,
        /// Description of what was expected.
        expected: String,
    },
    /// The query was syntactically valid but empty (selects nothing).
    EmptyQuery,
    /// `text()` / `val()` used in the selection path rather than a qualifier,
    /// which the class X of the paper does not allow.
    TestOutsideQualifier {
        /// Byte offset of the offending `text()`/`val()`.
        offset: usize,
    },
    /// An `@` not followed by an attribute name (an unterminated attribute
    /// step such as `a[@]` or `person/@`).
    ExpectedAttributeName {
        /// Byte offset of the `@`.
        offset: usize,
    },
    /// An attribute step `@attr` followed by further steps — attribute steps
    /// are only allowed in the final position of a path.
    AttributeStepNotLast {
        /// Byte offset of the axis after the attribute step.
        offset: usize,
    },
    /// A positional predicate whose operand is not a positive integer
    /// (`[0]`, `[2.5]`, `[-1]`).
    InvalidPosition {
        /// Byte offset of the offending number.
        offset: usize,
        /// The number as written.
        text: String,
    },
    /// An explicit `axis::` prefix naming an axis the fragment does not
    /// support (only `child`, `descendant-or-self` and `attribute` are).
    UnknownAxis {
        /// Byte offset of the axis name.
        offset: usize,
        /// The axis as written.
        axis: String,
    },
    /// A positional predicate with no step to count against (e.g. `.[2]` or
    /// `a//.[2]` — there is no preceding label or wildcard step).
    PositionWithoutStep,
    /// A positional predicate on a descendant-axis step inside a qualifier
    /// path (`[.//b[2]]`) — counting among `//`-reachable nodes is not
    /// supported.
    PositionOnDescendantStep,
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XPathError::UnexpectedChar { offset, found } => {
                write!(f, "unexpected character {found:?} at offset {offset}")
            }
            XPathError::UnterminatedString { offset } => {
                write!(f, "unterminated string literal starting at offset {offset}")
            }
            XPathError::InvalidNumber { offset, text } => {
                write!(f, "invalid number {text:?} at offset {offset}")
            }
            XPathError::UnexpectedToken { offset, found, expected } => {
                write!(f, "unexpected {found} at offset {offset}: expected {expected}")
            }
            XPathError::EmptyQuery => write!(f, "empty query"),
            XPathError::TestOutsideQualifier { offset } => write!(
                f,
                "text()/val() at offset {offset} is only allowed inside a qualifier in the class X"
            ),
            XPathError::ExpectedAttributeName { offset } => {
                write!(
                    f,
                    "unterminated attribute step at offset {offset}: expected a name after '@'"
                )
            }
            XPathError::AttributeStepNotLast { offset } => {
                write!(f, "attribute step at offset {offset} must be the last step of its path")
            }
            XPathError::InvalidPosition { offset, text } => {
                write!(f, "non-numeric position {text:?} at offset {offset}: expected a positive integer or last()")
            }
            XPathError::UnknownAxis { offset, axis } => {
                write!(f, "bad axis {axis:?} at offset {offset}: expected child, descendant-or-self or attribute")
            }
            XPathError::PositionWithoutStep => {
                write!(f, "positional predicate without a preceding label or wildcard step")
            }
            XPathError::PositionOnDescendantStep => {
                write!(f, "positional predicate on a descendant-axis step inside a qualifier is not supported")
            }
        }
    }
}

impl std::error::Error for XPathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offsets() {
        let e = XPathError::UnexpectedToken {
            offset: 12,
            found: "']'".into(),
            expected: "a step".into(),
        };
        assert!(e.to_string().contains("offset 12"));
        assert!(XPathError::EmptyQuery.to_string().contains("empty"));
        assert!(XPathError::TestOutsideQualifier { offset: 3 }.to_string().contains("qualifier"));
    }
}

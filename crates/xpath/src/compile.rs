//! Compilation of a normalized query into the vector representation of §2.2:
//!
//! * `SVect(Q)` — one entry per prefix of the selection path (we additionally
//!   keep an entry 0 for the *empty* prefix, which marks the evaluation
//!   context; the paper leaves this implicit in its pseudo-code),
//! * `QVect(Q)` — the list of all sub-queries of the qualifiers of `Q`, in a
//!   topological order such that every sub-query precedes the queries that
//!   contain it.
//!
//! Both vectors are linear in `|Q|`, which is what bounds the size of every
//! message exchanged between sites.

use crate::ast::CmpOp;
use crate::error::{XPathError, XPathResult};
use crate::normalize::{NormItem, NormPath, NormQual, NormQuery};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Axis used by qualifier sub-queries when stepping away from a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QAxis {
    /// Step to a child.
    Child,
    /// Step to a proper descendant (the `//` of a qualifier path).
    Descendant,
}

/// Index of an entry of `QVect(Q)`.
pub type QEntryId = usize;

/// One entry (sub-query) of `QVect(Q)`.
///
/// Entries are evaluated bottom-up: the value of an entry at a node `v`
/// depends only on *earlier* entries at `v` and on the `QV`/`QDV` vectors of
/// `v`'s children — which is exactly the paper's requirement for Stage 1 to
/// run in a single bottom-up pass per fragment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QEntry {
    /// True at `v` iff `v` is an element labelled with this name.
    LabelTest(String),
    /// True at `v` iff `v` is an element (wildcard step).
    ElementTest,
    /// True at `v` iff `v` is a text node with exactly this value.
    TextTest(String),
    /// True at `v` iff `v` is a text node whose numeric value satisfies the
    /// comparison (a leading `$` is tolerated, as in the running example).
    ValTest(CmpOp, f64),
    /// A step of a qualifier path: true at `v` iff the `test` entry is true
    /// at `v`, all `quals` entries are true at `v`, and — when `next` is
    /// present — the continuation holds below `v` (via a child for
    /// [`QAxis::Child`], via a proper descendant for [`QAxis::Descendant`]).
    Step {
        /// Node test entry (a `LabelTest`/`ElementTest`).
        test: QEntryId,
        /// Qualifier entries that must also hold at the node.
        quals: Vec<QEntryId>,
        /// Continuation of the path below this node.
        next: Option<(QAxis, QEntryId)>,
    },
    /// Existential anchor of a qualifier path at its context node: true at
    /// `v` iff some child (for [`QAxis::Child`]) or some proper descendant
    /// (for [`QAxis::Descendant`]) of `v` satisfies `entry`.
    Exists {
        /// Axis of the first step of the qualifier path.
        axis: QAxis,
        /// Entry describing the first matched node of the path.
        entry: QEntryId,
    },
    /// Negation of another entry (same node).
    Not(QEntryId),
    /// Conjunction of other entries (same node). Empty = `true`.
    And(Vec<QEntryId>),
    /// Disjunction of other entries (same node). Empty = `false`.
    Or(Vec<QEntryId>),
}

/// One item of the compiled selection path (`SVect` granularity).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelItem {
    /// A label step.
    Label(String),
    /// A wildcard step.
    Wildcard,
    /// The `//` marker.
    DescendantOrSelf,
    /// An `ε[q]` item: the conjunction of these qualifier entries must hold
    /// at the node reached by the preceding prefix.
    SelfQualifier(Vec<QEntryId>),
}

/// The fully compiled query used by every evaluation algorithm in the
/// workspace (centralized, PaX3, PaX2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledQuery {
    /// Was the query absolute? Determines the evaluation context (implicit
    /// document node vs. the root element itself).
    pub absolute: bool,
    /// The selection items; `SVect(Q)` has `sel_items.len() + 1` entries
    /// (entry 0 is the empty prefix / context marker).
    pub sel_items: Vec<SelItem>,
    /// `QVect(Q)`: all qualifier sub-queries in topological order.
    pub qvect: Vec<QEntry>,
    /// Human-readable selection path (e.g. `//broker/name`), for reports.
    pub selection_path: String,
    /// The normalized query this was compiled from.
    pub source: NormQuery,
}

impl CompiledQuery {
    /// Number of `SVect` entries (including the implicit entry 0).
    pub fn svect_len(&self) -> usize {
        self.sel_items.len() + 1
    }

    /// Number of `QVect` entries.
    pub fn qvect_len(&self) -> usize {
        self.qvect.len()
    }

    /// Does the query have any qualifier? (Both PaX3 and PaX2 skip the
    /// qualifier machinery entirely when it does not — Experiment 1.)
    pub fn has_qualifiers(&self) -> bool {
        !self.qvect.is_empty()
    }

    /// Does the *selection path* contain `//`? (Decides how effective the
    /// XPath-annotation pruning can be — Experiments 1–3.)
    pub fn selection_has_descendant(&self) -> bool {
        self.sel_items.iter().any(|i| matches!(i, SelItem::DescendantOrSelf))
    }

    /// A conservative upper bound on the per-node work, used by the cost
    /// meters: one operation per vector entry.
    pub fn per_node_ops(&self) -> u64 {
        (self.svect_len() + self.qvect_len()) as u64
    }

    /// The sequence of selection-step labels, with `//` rendered as `//` and
    /// wildcards as `*` — the "selection path" of the paper.
    pub fn selection_steps(&self) -> Vec<String> {
        self.sel_items
            .iter()
            .filter_map(|i| match i {
                SelItem::Label(l) => Some(l.clone()),
                SelItem::Wildcard => Some("*".to_string()),
                SelItem::DescendantOrSelf => Some("//".to_string()),
                SelItem::SelfQualifier(_) => None,
            })
            .collect()
    }
}

impl fmt::Display for CompiledQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CompiledQuery(selection: {}, |SVect| = {}, |QVect| = {})",
            self.selection_path,
            self.svect_len(),
            self.qvect_len()
        )
    }
}

/// Compile a normalized query.
pub fn compile(query: &NormQuery) -> XPathResult<CompiledQuery> {
    let mut compiler = Compiler { qvect: Vec::new() };
    let mut sel_items = Vec::new();
    for item in &query.path.items {
        match item {
            NormItem::Label(l) => sel_items.push(SelItem::Label(l.clone())),
            NormItem::Wildcard => sel_items.push(SelItem::Wildcard),
            NormItem::DescendantOrSelf => sel_items.push(SelItem::DescendantOrSelf),
            NormItem::Qualifier(q) => {
                let ids = compiler.compile_qual_conjuncts(q)?;
                sel_items.push(SelItem::SelfQualifier(ids));
            }
        }
    }
    let selection_path = render_selection_path(query);
    Ok(CompiledQuery {
        absolute: query.absolute,
        sel_items,
        qvect: compiler.qvect,
        selection_path,
        source: query.clone(),
    })
}

fn render_selection_path(query: &NormQuery) -> String {
    let mut out = String::new();
    if query.absolute {
        out.push('/');
    }
    let mut need_slash = false;
    for item in query.path.selection_items() {
        match item {
            NormItem::DescendantOrSelf => {
                // A `//` subsumes the single `/` separator.
                if out.ends_with('/') {
                    out.pop();
                }
                out.push_str("//");
                need_slash = false;
            }
            other => {
                if need_slash {
                    out.push('/');
                }
                out.push_str(&other.to_string());
                need_slash = true;
            }
        }
    }
    if out.is_empty() {
        out.push('.');
    }
    out
}

struct Compiler {
    qvect: Vec<QEntry>,
}

impl Compiler {
    fn push(&mut self, entry: QEntry) -> QEntryId {
        // Reuse an identical existing entry when possible: keeps QVect small
        // (e.g. the two `//stock/code/text()` sub-queries of the
        // introduction's Q1 share everything but the compared string).
        if let Some(pos) = self.qvect.iter().position(|e| *e == entry) {
            return pos;
        }
        self.qvect.push(entry);
        self.qvect.len() - 1
    }

    /// Compile a qualifier and return the entry ids whose conjunction is the
    /// qualifier's value (a top-level `And` is kept flat so the selection
    /// evaluation can AND them without an extra entry).
    fn compile_qual_conjuncts(&mut self, q: &NormQual) -> XPathResult<Vec<QEntryId>> {
        match q {
            NormQual::And(parts) => {
                let mut ids = Vec::with_capacity(parts.len());
                for p in parts {
                    ids.push(self.compile_qual(p)?);
                }
                Ok(ids)
            }
            other => Ok(vec![self.compile_qual(other)?]),
        }
    }

    /// Compile a qualifier into a single entry id.
    fn compile_qual(&mut self, q: &NormQual) -> XPathResult<QEntryId> {
        match q {
            NormQual::TextIs(s) => {
                let atom = self.push(QEntry::TextTest(s.clone()));
                Ok(self.push(QEntry::Exists { axis: QAxis::Child, entry: atom }))
            }
            NormQual::ValIs(op, n) => {
                let atom = self.push(QEntry::ValTest(*op, *n));
                Ok(self.push(QEntry::Exists { axis: QAxis::Child, entry: atom }))
            }
            NormQual::Not(inner) => {
                let e = self.compile_qual(inner)?;
                Ok(self.push(QEntry::Not(e)))
            }
            NormQual::And(parts) => {
                let ids =
                    parts.iter().map(|p| self.compile_qual(p)).collect::<XPathResult<Vec<_>>>()?;
                Ok(self.push(QEntry::And(ids)))
            }
            NormQual::Or(parts) => {
                let ids =
                    parts.iter().map(|p| self.compile_qual(p)).collect::<XPathResult<Vec<_>>>()?;
                Ok(self.push(QEntry::Or(ids)))
            }
            NormQual::Path(path) => self.compile_qual_path(path),
        }
    }

    /// Compile a qualifier path (existential semantics at the context node).
    fn compile_qual_path(&mut self, path: &NormPath) -> XPathResult<QEntryId> {
        // Split the item list into: qualifiers applying to the context node
        // itself (leading ε[q] items) and a list of steps, each consisting of
        // (axis, node test, trailing ε[q] items).
        struct Step {
            axis: QAxis,
            test: NodeTestKind,
            quals: Vec<NormQual>,
        }
        enum NodeTestKind {
            Label(String),
            Wildcard,
        }

        let mut context_quals: Vec<NormQual> = Vec::new();
        let mut steps: Vec<Step> = Vec::new();
        let mut pending_axis = QAxis::Child;
        for item in &path.items {
            match item {
                NormItem::DescendantOrSelf => pending_axis = QAxis::Descendant,
                NormItem::Label(l) => {
                    steps.push(Step {
                        axis: pending_axis,
                        test: NodeTestKind::Label(l.clone()),
                        quals: Vec::new(),
                    });
                    pending_axis = QAxis::Child;
                }
                NormItem::Wildcard => {
                    steps.push(Step {
                        axis: pending_axis,
                        test: NodeTestKind::Wildcard,
                        quals: Vec::new(),
                    });
                    pending_axis = QAxis::Child;
                }
                NormItem::Qualifier(q) => match steps.last_mut() {
                    Some(step) => step.quals.push(q.clone()),
                    None => context_quals.push(q.clone()),
                },
            }
        }
        // A trailing `//` with no following step (e.g. the qualifier `[a//]`)
        // would be ill-formed; the parser cannot produce it, but reject it
        // defensively for hand-built normal forms.
        if pending_axis == QAxis::Descendant && steps.is_empty() && path.items.len() == 1 {
            return Err(XPathError::EmptyQuery);
        }

        // Compile the steps from the last to the first, so that every entry
        // only references already-compiled (smaller-index) entries... the
        // entries themselves are appended in suffix order, which *is* a
        // topological order for the bottom-up pass.
        let mut next: Option<(QAxis, QEntryId)> = None;
        for step in steps.iter().rev() {
            let test_id = match &step.test {
                NodeTestKind::Label(l) => self.push(QEntry::LabelTest(l.clone())),
                NodeTestKind::Wildcard => self.push(QEntry::ElementTest),
            };
            let mut qual_ids = Vec::with_capacity(step.quals.len());
            for q in &step.quals {
                qual_ids.push(self.compile_qual(q)?);
            }
            let step_id = self.push(QEntry::Step { test: test_id, quals: qual_ids, next });
            next = Some((step.axis, step_id));
        }

        // Anchor at the context node.
        let path_anchor: Option<QEntryId> =
            next.map(|(axis, entry)| self.push(QEntry::Exists { axis, entry }));

        // Combine with the context qualifiers (leading ε[q] items).
        let mut conjuncts: Vec<QEntryId> = Vec::new();
        for q in &context_quals {
            conjuncts.push(self.compile_qual(q)?);
        }
        if let Some(anchor) = path_anchor {
            conjuncts.push(anchor);
        }
        match conjuncts.len() {
            0 => Ok(self.push(QEntry::And(Vec::new()))), // `[.]` — trivially true
            1 => Ok(conjuncts[0]),
            _ => Ok(self.push(QEntry::And(conjuncts))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use crate::parse;

    fn comp(text: &str) -> CompiledQuery {
        compile(&normalize(&parse(text).unwrap())).unwrap()
    }

    #[test]
    fn simple_path_has_no_qvect() {
        let c = comp("/sites/site/people/person");
        assert_eq!(c.qvect_len(), 0);
        assert!(!c.has_qualifiers());
        assert_eq!(c.svect_len(), 5); // 4 steps + the empty prefix
        assert_eq!(c.selection_path, "/sites/site/people/person");
        assert_eq!(c.selection_steps(), vec!["sites", "site", "people", "person"]);
    }

    #[test]
    fn descendant_axis_is_an_svect_item() {
        let c = comp("/sites/site/open_auctions//annotation");
        assert!(c.selection_has_descendant());
        assert_eq!(c.svect_len(), 6); // sites, site, open_auctions, //, annotation + empty
    }

    #[test]
    fn example_2_1_vectors_are_linear_in_the_query() {
        let c =
            comp("client[country/text() = \"US\"]/broker[market/name/text() = \"NASDAQ\"]/name");
        // Selection path client/broker/name plus two ε[q] items plus entry 0.
        assert_eq!(c.svect_len(), 6);
        assert_eq!(c.selection_path, "client/broker/name");
        // The paper's QVect has 9 entries; ours differs slightly in shape but
        // must stay the same order of magnitude (linear in |Q|).
        assert!(c.qvect_len() >= 6);
        assert!(c.qvect_len() <= 12);
        assert!(c.has_qualifiers());
    }

    #[test]
    fn qualifier_entries_are_topologically_ordered() {
        for text in [
            "client[country/text() = \"US\"]/broker[market/name/text() = \"NASDAQ\"]/name",
            "//broker[//stock/code/text()=\"goog\" and not(//stock/code/text()=\"yhoo\")]/name",
            "/sites//people/person[profile/age > 20 and address/country=\"US\"]/creditcard",
            "a[b[c[d]]/e]/f",
            "x[not(a or b) and c[text()='t']]",
        ] {
            let c = comp(text);
            for (i, entry) in c.qvect.iter().enumerate() {
                let refs: Vec<usize> = match entry {
                    QEntry::Step { test, quals, next } => {
                        let mut r = vec![*test];
                        r.extend(quals.iter().copied());
                        if let Some((_, e)) = next {
                            r.push(*e);
                        }
                        r
                    }
                    QEntry::Exists { entry, .. } => vec![*entry],
                    QEntry::Not(e) => vec![*e],
                    QEntry::And(es) | QEntry::Or(es) => es.clone(),
                    _ => vec![],
                };
                for r in refs {
                    assert!(r < i, "entry {i} of {text} references later entry {r}");
                }
            }
        }
    }

    #[test]
    fn selection_qualifier_items_reference_qvect_entries() {
        let c = comp("person[profile/age > 20 and address/country=\"US\"]/creditcard");
        let qual_items: Vec<&SelItem> =
            c.sel_items.iter().filter(|i| matches!(i, SelItem::SelfQualifier(_))).collect();
        assert_eq!(qual_items.len(), 1);
        match qual_items[0] {
            SelItem::SelfQualifier(ids) => {
                assert_eq!(ids.len(), 2); // the two conjuncts stay flat
                for id in ids {
                    assert!(*id < c.qvect_len());
                }
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn shared_subqueries_are_deduplicated() {
        // Both conjuncts mention //stock/code — the label tests are shared.
        let c =
            comp("//broker[//stock/code/text()=\"goog\" and //stock/code/text()=\"goog\"]/name");
        let label_tests = c
            .qvect
            .iter()
            .filter(|e| matches!(e, QEntry::LabelTest(l) if l == "stock" || l == "code"))
            .count();
        assert_eq!(label_tests, 2, "identical label tests must be shared");
    }

    #[test]
    fn boolean_query_compiles_to_pure_qualifier() {
        let c = comp(".[//stock/code/text()=\"goog\"]");
        assert_eq!(c.sel_items.len(), 1);
        assert!(matches!(c.sel_items[0], SelItem::SelfQualifier(_)));
        assert!(c.has_qualifiers());
        assert_eq!(c.selection_path, ".");
    }

    #[test]
    fn per_node_ops_counts_both_vectors() {
        let c = comp("person[profile/age > 20]/name");
        assert_eq!(c.per_node_ops(), (c.svect_len() + c.qvect_len()) as u64);
    }

    #[test]
    fn wildcard_selection_step() {
        let c = comp("*/client/name");
        assert_eq!(c.sel_items[0], SelItem::Wildcard);
        assert_eq!(c.selection_steps(), vec!["*", "client", "name"]);
    }

    #[test]
    fn nested_qualifiers_compile() {
        let c = comp("client[broker[market/name/text()='TSE']]/name");
        assert!(c.has_qualifiers());
        // There must be at least: TextTest, Exists, name LabelTest, Step,
        // market LabelTest, Step, Exists, broker LabelTest, Step, Exists.
        assert!(c.qvect_len() >= 8);
    }
}

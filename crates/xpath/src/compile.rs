//! Compilation of a normalized query into the vector representation of §2.2:
//!
//! * `SVect(Q)` — one entry per prefix of the selection path (we additionally
//!   keep an entry 0 for the *empty* prefix, which marks the evaluation
//!   context; the paper leaves this implicit in its pseudo-code),
//! * `QVect(Q)` — the list of all sub-queries of the qualifiers of `Q`, in a
//!   topological order such that every sub-query precedes the queries that
//!   contain it.
//!
//! Both vectors are linear in `|Q|`, which is what bounds the size of every
//! message exchanged between sites.

use crate::ast::{CmpOp, PosPred};
use crate::error::{XPathError, XPathResult};
use crate::normalize::{NormItem, NormPath, NormQual, NormQuery};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Axis used by qualifier sub-queries when stepping away from a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QAxis {
    /// Step to a child.
    Child,
    /// Step to a proper descendant (the `//` of a qualifier path).
    Descendant,
}

/// Index of an entry of `QVect(Q)`.
pub type QEntryId = usize;

/// One entry (sub-query) of `QVect(Q)`.
///
/// Entries are evaluated bottom-up: the value of an entry at a node `v`
/// depends only on *earlier* entries at `v` and on the `QV`/`QDV` vectors of
/// `v`'s children — which is exactly the paper's requirement for Stage 1 to
/// run in a single bottom-up pass per fragment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QEntry {
    /// True at `v` iff `v` is an element labelled with this name.
    LabelTest(String),
    /// True at `v` iff `v` is an element (wildcard step).
    ElementTest,
    /// True at `v` iff `v` is a text node with exactly this value.
    TextTest(String),
    /// True at `v` iff `v` is a text node whose numeric value satisfies the
    /// comparison (a leading `$` is tolerated, as in the running example).
    ValTest(CmpOp, f64),
    /// True at `v` iff `v` is an element carrying this attribute.
    AttrTest(String),
    /// True at `v` iff `v` is an element whose attribute exists and has
    /// exactly this string value.
    AttrValueTest(String, String),
    /// True at `v` iff `v` is an element whose attribute exists and parses
    /// as a number satisfying the comparison.
    AttrCmpTest(String, CmpOp, f64),
    /// A step of a qualifier path: true at `v` iff the `test` entry is true
    /// at `v`, all `quals` entries are true at `v`, and — when `next` is
    /// present — the continuation holds below `v` (via a child for
    /// [`QAxis::Child`], via a proper descendant for [`QAxis::Descendant`]).
    Step {
        /// Node test entry (a `LabelTest`/`ElementTest`).
        test: QEntryId,
        /// Qualifier entries that must also hold at the node.
        quals: Vec<QEntryId>,
        /// Continuation of the path below this node.
        next: Option<(QAxis, QEntryId)>,
        /// Positional filter on the continuation: the child satisfying `next`
        /// must additionally sit at a matching position among `v`'s children.
        /// Only ever present on a [`QAxis::Child`] continuation.
        next_pos: Option<PosFilter>,
    },
    /// Existential anchor of a qualifier path at its context node: true at
    /// `v` iff some child (for [`QAxis::Child`]) or some proper descendant
    /// (for [`QAxis::Descendant`]) of `v` satisfies `entry`.
    Exists {
        /// Axis of the first step of the qualifier path.
        axis: QAxis,
        /// Entry describing the first matched node of the path.
        entry: QEntryId,
        /// Positional filter on the first step (only for [`QAxis::Child`]):
        /// the child must sit at a matching position among `v`'s children.
        pos: Option<PosFilter>,
    },
    /// Negation of another entry (same node).
    Not(QEntryId),
    /// Conjunction of other entries (same node). Empty = `true`.
    And(Vec<QEntryId>),
    /// Disjunction of other entries (same node). Empty = `false`.
    Or(Vec<QEntryId>),
}

/// One item of the compiled selection path (`SVect` granularity).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelItem {
    /// A label step.
    Label(String),
    /// A wildcard step.
    Wildcard,
    /// The `//` marker.
    DescendantOrSelf,
    /// An `ε[q]` item: the conjunction of these qualifier entries must hold
    /// at the node reached by the preceding prefix.
    SelfQualifier(Vec<QEntryId>),
}

/// Node test used when counting siblings for a positional predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PosTest {
    /// Count only element-like children carrying this label (a virtual
    /// placeholder counts via its recorded root label).
    Label(String),
    /// Count every element-like child (wildcard step).
    AnyElement,
}

impl PosTest {
    /// Does a child with this step label match the test? `label` is `None`
    /// for text nodes, which never count.
    pub fn matches(&self, label: Option<&str>) -> bool {
        match (self, label) {
            (PosTest::Label(l), Some(x)) => l == x,
            (PosTest::AnyElement, Some(_)) => true,
            (_, None) => false,
        }
    }
}

/// A positional filter on a step: the node's 1-based index among the
/// test-matching children of its parent must satisfy every predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PosFilter {
    /// The node test of the step the position counts against.
    pub test: PosTest,
    /// The positional predicates (`[2]`, `[last()]`); all must hold.
    pub preds: Vec<PosPred>,
}

impl PosFilter {
    /// Evaluate the filter for a node with the given 1-based index among its
    /// test-matching siblings, out of `total` matching siblings.
    pub fn accepts(&self, index: u32, total: u32) -> bool {
        self.preds.iter().all(|p| match p {
            PosPred::Index(k) => index == *k,
            PosPred::Last => index == total,
        })
    }

    /// Does any predicate require knowing the total sibling count
    /// (`last()`)? Decides whether evaluation needs a counting pre-pass.
    pub fn needs_total(&self) -> bool {
        self.preds.iter().any(|p| matches!(p, PosPred::Last))
    }
}

/// A positional predicate attached to a selection-path step. Each one adds a
/// *positional fact* entry to the evaluation vectors (see
/// [`CompiledQuery::init_len`]): the fact is true at a node iff the node sits
/// at an accepted position among its test-matching siblings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelPos {
    /// Index into `sel_items` of the step the position constrains.
    pub item: usize,
    /// The filter (node test + predicates).
    pub filter: PosFilter,
}

/// The fully compiled query used by every evaluation algorithm in the
/// workspace (centralized, PaX3, PaX2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledQuery {
    /// Was the query absolute? Determines the evaluation context (implicit
    /// document node vs. the root element itself).
    pub absolute: bool,
    /// The selection items; `SVect(Q)` has `sel_items.len() + 1` entries
    /// (entry 0 is the empty prefix / context marker).
    pub sel_items: Vec<SelItem>,
    /// `QVect(Q)`: all qualifier sub-queries in topological order.
    pub qvect: Vec<QEntry>,
    /// Positional predicates on selection-path steps, in path order. Each
    /// contributes one positional-fact entry to every carried vector.
    pub sel_positions: Vec<SelPos>,
    /// Human-readable selection path (e.g. `//broker/name`), for reports.
    pub selection_path: String,
    /// The normalized query this was compiled from.
    pub source: NormQuery,
}

impl CompiledQuery {
    /// Number of `SVect` entries (including the implicit entry 0).
    pub fn svect_len(&self) -> usize {
        self.sel_items.len() + 1
    }

    /// Length of the evaluation vectors carried down the tree and shipped at
    /// fragment boundaries: the `SVect` entries followed by one positional
    /// fact per constrained selection step. Equal to [`Self::svect_len`]
    /// when the query has no positional predicates.
    pub fn init_len(&self) -> usize {
        self.svect_len() + self.sel_positions.len()
    }

    /// Does the selection path carry positional predicates? (The fast paths
    /// skip the fact machinery entirely when it does not.)
    pub fn has_positions(&self) -> bool {
        !self.sel_positions.is_empty()
    }

    /// Number of `QVect` entries.
    pub fn qvect_len(&self) -> usize {
        self.qvect.len()
    }

    /// Does the query have any qualifier? (Both PaX3 and PaX2 skip the
    /// qualifier machinery entirely when it does not — Experiment 1.)
    pub fn has_qualifiers(&self) -> bool {
        !self.qvect.is_empty()
    }

    /// Does the *selection path* contain `//`? (Decides how effective the
    /// XPath-annotation pruning can be — Experiments 1–3.)
    pub fn selection_has_descendant(&self) -> bool {
        self.sel_items.iter().any(|i| matches!(i, SelItem::DescendantOrSelf))
    }

    /// A conservative upper bound on the per-node work, used by the cost
    /// meters: one operation per vector entry (including positional facts).
    pub fn per_node_ops(&self) -> u64 {
        (self.init_len() + self.qvect_len()) as u64
    }

    /// The sequence of selection-step labels, with `//` rendered as `//` and
    /// wildcards as `*` — the "selection path" of the paper.
    pub fn selection_steps(&self) -> Vec<String> {
        self.sel_items
            .iter()
            .filter_map(|i| match i {
                SelItem::Label(l) => Some(l.clone()),
                SelItem::Wildcard => Some("*".to_string()),
                SelItem::DescendantOrSelf => Some("//".to_string()),
                SelItem::SelfQualifier(_) => None,
            })
            .collect()
    }
}

impl fmt::Display for CompiledQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CompiledQuery(selection: {}, |SVect| = {}, |QVect| = {})",
            self.selection_path,
            self.svect_len(),
            self.qvect_len()
        )
    }
}

/// Compile a normalized query.
pub fn compile(query: &NormQuery) -> XPathResult<CompiledQuery> {
    compile_inner(query, None)
}

/// Compile a normalized query, sharing compiled qualifier sub-trees through
/// `cache`. Produces exactly the same [`CompiledQuery`] as [`compile`] — the
/// cache only short-cuts recompilation of qualifier subtrees it has already
/// seen (in this query or a previous one), splicing the stored block into the
/// current `QVect` through the deduplicating `push`.
pub fn compile_with_cache(
    query: &NormQuery,
    cache: &mut CompileCache,
) -> XPathResult<CompiledQuery> {
    compile_inner(query, Some(cache))
}

fn compile_inner(
    query: &NormQuery,
    cache: Option<&mut CompileCache>,
) -> XPathResult<CompiledQuery> {
    let mut compiler = Compiler { qvect: Vec::new(), cache };
    let mut sel_items: Vec<SelItem> = Vec::new();
    let mut sel_positions: Vec<SelPos> = Vec::new();
    for item in &query.path.items {
        match item {
            NormItem::Label(l) => sel_items.push(SelItem::Label(l.clone())),
            NormItem::Wildcard => sel_items.push(SelItem::Wildcard),
            NormItem::DescendantOrSelf => sel_items.push(SelItem::DescendantOrSelf),
            NormItem::Qualifier(q) => {
                let ids = compiler.compile_qual_conjuncts(q)?;
                sel_items.push(SelItem::SelfQualifier(ids));
            }
            NormItem::Position(pred) => {
                // Attach to the nearest preceding step item; `//` in between
                // means there is no single step to count against.
                let mut found = None;
                for (i, it) in sel_items.iter().enumerate().rev() {
                    match it {
                        SelItem::Label(l) => {
                            found = Some((i, PosTest::Label(l.clone())));
                            break;
                        }
                        SelItem::Wildcard => {
                            found = Some((i, PosTest::AnyElement));
                            break;
                        }
                        SelItem::SelfQualifier(_) => continue,
                        SelItem::DescendantOrSelf => break,
                    }
                }
                let (item, test) = found.ok_or(XPathError::PositionWithoutStep)?;
                match sel_positions.last_mut() {
                    Some(sp) if sp.item == item => sp.filter.preds.push(*pred),
                    _ => sel_positions
                        .push(SelPos { item, filter: PosFilter { test, preds: vec![*pred] } }),
                }
            }
        }
    }
    let selection_path = render_selection_path(query);
    Ok(CompiledQuery {
        absolute: query.absolute,
        sel_items,
        qvect: compiler.qvect,
        sel_positions,
        selection_path,
        source: query.clone(),
    })
}

/// A cache of compiled qualifier sub-trees shared across
/// [`compile_with_cache`] calls. Each cached subtree is stored as a
/// relocatable block (entries with block-local ids plus a block-local root)
/// keyed by the canonical debug rendering of its [`NormQual`]; on a hit the
/// block is spliced into the current compiler, re-using identical entries
/// already present there.
#[derive(Debug, Default)]
pub struct CompileCache {
    blocks: HashMap<String, CachedBlock>,
    /// Number of qualifier subtrees served from the cache.
    pub hits: u64,
    /// Number of qualifier subtrees compiled fresh and inserted.
    pub misses: u64,
}

impl CompileCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct cached subtrees.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total number of [`QEntry`] values stored across all cached blocks —
    /// the size of the shared compilation pool.
    pub fn pool_entries(&self) -> usize {
        self.blocks.values().map(|b| b.entries.len()).sum()
    }
}

#[derive(Debug, Clone)]
struct CachedBlock {
    entries: Vec<QEntry>,
    root: usize,
}

/// Rewrite every entry-id reference through `map` (old id → new id).
fn remap_entry(e: &QEntry, map: &[QEntryId]) -> QEntry {
    match e {
        QEntry::Step { test, quals, next, next_pos } => QEntry::Step {
            test: map[*test],
            quals: quals.iter().map(|q| map[*q]).collect(),
            next: next.map(|(a, e)| (a, map[e])),
            next_pos: next_pos.clone(),
        },
        QEntry::Exists { axis, entry, pos } => {
            QEntry::Exists { axis: *axis, entry: map[*entry], pos: pos.clone() }
        }
        QEntry::Not(e) => QEntry::Not(map[*e]),
        QEntry::And(es) => QEntry::And(es.iter().map(|i| map[*i]).collect()),
        QEntry::Or(es) => QEntry::Or(es.iter().map(|i| map[*i]).collect()),
        atom => atom.clone(),
    }
}

/// The entry ids an entry references (always smaller than its own id).
fn entry_refs(e: &QEntry) -> Vec<QEntryId> {
    match e {
        QEntry::Step { test, quals, next, .. } => {
            let mut r = vec![*test];
            r.extend(quals.iter().copied());
            if let Some((_, e)) = next {
                r.push(*e);
            }
            r
        }
        QEntry::Exists { entry, .. } => vec![*entry],
        QEntry::Not(e) => vec![*e],
        QEntry::And(es) | QEntry::Or(es) => es.clone(),
        _ => Vec::new(),
    }
}

fn render_selection_path(query: &NormQuery) -> String {
    let mut out = String::new();
    if query.absolute {
        out.push('/');
    }
    let mut need_slash = false;
    for item in query.path.selection_items() {
        match item {
            NormItem::DescendantOrSelf => {
                // A `//` subsumes the single `/` separator.
                if out.ends_with('/') {
                    out.pop();
                }
                out.push_str("//");
                need_slash = false;
            }
            other => {
                if need_slash {
                    out.push('/');
                }
                out.push_str(&other.to_string());
                need_slash = true;
            }
        }
    }
    if out.is_empty() {
        out.push('.');
    }
    out
}

struct Compiler<'c> {
    qvect: Vec<QEntry>,
    cache: Option<&'c mut CompileCache>,
}

impl Compiler<'_> {
    fn push(&mut self, entry: QEntry) -> QEntryId {
        // Reuse an identical existing entry when possible: keeps QVect small
        // (e.g. the two `//stock/code/text()` sub-queries of the
        // introduction's Q1 share everything but the compared string).
        if let Some(pos) = self.qvect.iter().position(|e| *e == entry) {
            return pos;
        }
        self.qvect.push(entry);
        self.qvect.len() - 1
    }

    /// Splice a cached block into this compiler's `QVect`, entry by entry in
    /// the block's (topological) order; `push` re-uses identical entries, so
    /// splicing is a no-op when the subtree is already present.
    fn splice(&mut self, block: &CachedBlock) -> QEntryId {
        let mut map: Vec<QEntryId> = Vec::with_capacity(block.entries.len());
        for e in &block.entries {
            let remapped = remap_entry(e, &map);
            map.push(self.push(remapped));
        }
        map[block.root]
    }

    /// Extract the reachable closure of `root` as a relocatable block with
    /// block-local ids (ascending original id order is already topological).
    fn extract(&self, root: QEntryId) -> CachedBlock {
        let mut wanted = vec![false; root + 1];
        wanted[root] = true;
        for i in (0..=root).rev() {
            if wanted[i] {
                for r in entry_refs(&self.qvect[i]) {
                    wanted[r] = true;
                }
            }
        }
        let mut map = vec![usize::MAX; root + 1];
        let mut entries = Vec::new();
        for i in 0..=root {
            if wanted[i] {
                map[i] = entries.len();
                entries.push(remap_entry(&self.qvect[i], &map));
            }
        }
        CachedBlock { entries, root: map[root] }
    }

    /// Compile a qualifier and return the entry ids whose conjunction is the
    /// qualifier's value (a top-level `And` is kept flat so the selection
    /// evaluation can AND them without an extra entry).
    fn compile_qual_conjuncts(&mut self, q: &NormQual) -> XPathResult<Vec<QEntryId>> {
        match q {
            NormQual::And(parts) => {
                let mut ids = Vec::with_capacity(parts.len());
                for p in parts {
                    ids.push(self.compile_qual(p)?);
                }
                Ok(ids)
            }
            other => Ok(vec![self.compile_qual(other)?]),
        }
    }

    /// Compile a qualifier into a single entry id, consulting the subtree
    /// cache when one is attached.
    fn compile_qual(&mut self, q: &NormQual) -> XPathResult<QEntryId> {
        if self.cache.is_some() {
            let key = format!("{q:?}");
            if let Some(block) = self.cache.as_ref().and_then(|c| c.blocks.get(&key)) {
                let block = block.clone();
                if let Some(c) = self.cache.as_mut() {
                    c.hits += 1;
                }
                return Ok(self.splice(&block));
            }
            let root = self.compile_qual_uncached(q)?;
            let block = self.extract(root);
            if let Some(c) = self.cache.as_mut() {
                c.misses += 1;
                c.blocks.insert(key, block);
            }
            return Ok(root);
        }
        self.compile_qual_uncached(q)
    }

    fn compile_qual_uncached(&mut self, q: &NormQual) -> XPathResult<QEntryId> {
        match q {
            NormQual::TextIs(s) => {
                let atom = self.push(QEntry::TextTest(s.clone()));
                Ok(self.push(QEntry::Exists { axis: QAxis::Child, entry: atom, pos: None }))
            }
            NormQual::ValIs(op, n) => {
                let atom = self.push(QEntry::ValTest(*op, *n));
                Ok(self.push(QEntry::Exists { axis: QAxis::Child, entry: atom, pos: None }))
            }
            NormQual::HasAttr(a) => Ok(self.push(QEntry::AttrTest(a.clone()))),
            NormQual::AttrIs(a, s) => Ok(self.push(QEntry::AttrValueTest(a.clone(), s.clone()))),
            NormQual::AttrCmp(a, op, n) => Ok(self.push(QEntry::AttrCmpTest(a.clone(), *op, *n))),
            NormQual::Not(inner) => {
                let e = self.compile_qual(inner)?;
                Ok(self.push(QEntry::Not(e)))
            }
            NormQual::And(parts) => {
                let ids =
                    parts.iter().map(|p| self.compile_qual(p)).collect::<XPathResult<Vec<_>>>()?;
                Ok(self.push(QEntry::And(ids)))
            }
            NormQual::Or(parts) => {
                let ids =
                    parts.iter().map(|p| self.compile_qual(p)).collect::<XPathResult<Vec<_>>>()?;
                Ok(self.push(QEntry::Or(ids)))
            }
            NormQual::Path(path) => self.compile_qual_path(path),
        }
    }

    /// Compile a qualifier path (existential semantics at the context node).
    fn compile_qual_path(&mut self, path: &NormPath) -> XPathResult<QEntryId> {
        // Split the item list into: qualifiers applying to the context node
        // itself (leading ε[q] items) and a list of steps, each consisting of
        // (axis, node test, trailing ε[q] items).
        struct Step {
            axis: QAxis,
            test: NodeTestKind,
            quals: Vec<NormQual>,
            pos: Vec<PosPred>,
        }
        enum NodeTestKind {
            Label(String),
            Wildcard,
        }

        let mut context_quals: Vec<NormQual> = Vec::new();
        let mut steps: Vec<Step> = Vec::new();
        let mut pending_axis = QAxis::Child;
        for item in &path.items {
            match item {
                NormItem::DescendantOrSelf => pending_axis = QAxis::Descendant,
                NormItem::Label(l) => {
                    steps.push(Step {
                        axis: pending_axis,
                        test: NodeTestKind::Label(l.clone()),
                        quals: Vec::new(),
                        pos: Vec::new(),
                    });
                    pending_axis = QAxis::Child;
                }
                NormItem::Wildcard => {
                    steps.push(Step {
                        axis: pending_axis,
                        test: NodeTestKind::Wildcard,
                        quals: Vec::new(),
                        pos: Vec::new(),
                    });
                    pending_axis = QAxis::Child;
                }
                NormItem::Qualifier(q) => match steps.last_mut() {
                    Some(step) => step.quals.push(q.clone()),
                    None => context_quals.push(q.clone()),
                },
                NormItem::Position(p) => match steps.last_mut() {
                    Some(step) => {
                        // Counting among `//`-reachable nodes has no single
                        // parent to count in.
                        if step.axis == QAxis::Descendant {
                            return Err(XPathError::PositionOnDescendantStep);
                        }
                        step.pos.push(*p);
                    }
                    None => return Err(XPathError::PositionWithoutStep),
                },
            }
        }
        // A trailing `//` with no following step (e.g. the qualifier `[a//]`)
        // would be ill-formed; the parser cannot produce it, but reject it
        // defensively for hand-built normal forms.
        if pending_axis == QAxis::Descendant && steps.is_empty() && path.items.len() == 1 {
            return Err(XPathError::EmptyQuery);
        }

        // Compile the steps from the last to the first, so that every entry
        // only references already-compiled (smaller-index) entries... the
        // entries themselves are appended in suffix order, which *is* a
        // topological order for the bottom-up pass.
        let mut next: Option<(QAxis, QEntryId, Option<PosFilter>)> = None;
        for step in steps.iter().rev() {
            let test_id = match &step.test {
                NodeTestKind::Label(l) => self.push(QEntry::LabelTest(l.clone())),
                NodeTestKind::Wildcard => self.push(QEntry::ElementTest),
            };
            let pos_filter = if step.pos.is_empty() {
                None
            } else {
                Some(PosFilter {
                    test: match &step.test {
                        NodeTestKind::Label(l) => PosTest::Label(l.clone()),
                        NodeTestKind::Wildcard => PosTest::AnyElement,
                    },
                    preds: step.pos.clone(),
                })
            };
            let mut qual_ids = Vec::with_capacity(step.quals.len());
            for q in &step.quals {
                qual_ids.push(self.compile_qual(q)?);
            }
            let (next_link, next_pos) = match next {
                Some((a, e, p)) => (Some((a, e)), p),
                None => (None, None),
            };
            let step_id = self.push(QEntry::Step {
                test: test_id,
                quals: qual_ids,
                next: next_link,
                next_pos,
            });
            next = Some((step.axis, step_id, pos_filter));
        }

        // Anchor at the context node.
        let path_anchor: Option<QEntryId> =
            next.map(|(axis, entry, pos)| self.push(QEntry::Exists { axis, entry, pos }));

        // Combine with the context qualifiers (leading ε[q] items).
        let mut conjuncts: Vec<QEntryId> = Vec::new();
        for q in &context_quals {
            conjuncts.push(self.compile_qual(q)?);
        }
        if let Some(anchor) = path_anchor {
            conjuncts.push(anchor);
        }
        match conjuncts.len() {
            0 => Ok(self.push(QEntry::And(Vec::new()))), // `[.]` — trivially true
            1 => Ok(conjuncts[0]),
            _ => Ok(self.push(QEntry::And(conjuncts))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use crate::parse;

    fn comp(text: &str) -> CompiledQuery {
        compile(&normalize(&parse(text).unwrap())).unwrap()
    }

    #[test]
    fn simple_path_has_no_qvect() {
        let c = comp("/sites/site/people/person");
        assert_eq!(c.qvect_len(), 0);
        assert!(!c.has_qualifiers());
        assert_eq!(c.svect_len(), 5); // 4 steps + the empty prefix
        assert_eq!(c.selection_path, "/sites/site/people/person");
        assert_eq!(c.selection_steps(), vec!["sites", "site", "people", "person"]);
    }

    #[test]
    fn descendant_axis_is_an_svect_item() {
        let c = comp("/sites/site/open_auctions//annotation");
        assert!(c.selection_has_descendant());
        assert_eq!(c.svect_len(), 6); // sites, site, open_auctions, //, annotation + empty
    }

    #[test]
    fn example_2_1_vectors_are_linear_in_the_query() {
        let c =
            comp("client[country/text() = \"US\"]/broker[market/name/text() = \"NASDAQ\"]/name");
        // Selection path client/broker/name plus two ε[q] items plus entry 0.
        assert_eq!(c.svect_len(), 6);
        assert_eq!(c.selection_path, "client/broker/name");
        // The paper's QVect has 9 entries; ours differs slightly in shape but
        // must stay the same order of magnitude (linear in |Q|).
        assert!(c.qvect_len() >= 6);
        assert!(c.qvect_len() <= 12);
        assert!(c.has_qualifiers());
    }

    #[test]
    fn qualifier_entries_are_topologically_ordered() {
        for text in [
            "client[country/text() = \"US\"]/broker[market/name/text() = \"NASDAQ\"]/name",
            "//broker[//stock/code/text()=\"goog\" and not(//stock/code/text()=\"yhoo\")]/name",
            "/sites//people/person[profile/age > 20 and address/country=\"US\"]/creditcard",
            "a[b[c[d]]/e]/f",
            "x[not(a or b) and c[text()='t']]",
            "a[@id = \"x\" and b[2]/c]/d[last()]",
            "//item[@price > 10]/name[1]",
        ] {
            let c = comp(text);
            for (i, entry) in c.qvect.iter().enumerate() {
                for r in entry_refs(entry) {
                    assert!(r < i, "entry {i} of {text} references later entry {r}");
                }
            }
        }
    }

    #[test]
    fn selection_qualifier_items_reference_qvect_entries() {
        let c = comp("person[profile/age > 20 and address/country=\"US\"]/creditcard");
        let qual_items: Vec<&SelItem> =
            c.sel_items.iter().filter(|i| matches!(i, SelItem::SelfQualifier(_))).collect();
        assert_eq!(qual_items.len(), 1);
        match qual_items[0] {
            SelItem::SelfQualifier(ids) => {
                assert_eq!(ids.len(), 2); // the two conjuncts stay flat
                for id in ids {
                    assert!(*id < c.qvect_len());
                }
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn shared_subqueries_are_deduplicated() {
        // Both conjuncts mention //stock/code — the label tests are shared.
        let c =
            comp("//broker[//stock/code/text()=\"goog\" and //stock/code/text()=\"goog\"]/name");
        let label_tests = c
            .qvect
            .iter()
            .filter(|e| matches!(e, QEntry::LabelTest(l) if l == "stock" || l == "code"))
            .count();
        assert_eq!(label_tests, 2, "identical label tests must be shared");
    }

    #[test]
    fn boolean_query_compiles_to_pure_qualifier() {
        let c = comp(".[//stock/code/text()=\"goog\"]");
        assert_eq!(c.sel_items.len(), 1);
        assert!(matches!(c.sel_items[0], SelItem::SelfQualifier(_)));
        assert!(c.has_qualifiers());
        assert_eq!(c.selection_path, ".");
    }

    #[test]
    fn per_node_ops_counts_both_vectors() {
        let c = comp("person[profile/age > 20]/name");
        assert_eq!(c.per_node_ops(), (c.svect_len() + c.qvect_len()) as u64);
    }

    #[test]
    fn wildcard_selection_step() {
        let c = comp("*/client/name");
        assert_eq!(c.sel_items[0], SelItem::Wildcard);
        assert_eq!(c.selection_steps(), vec!["*", "client", "name"]);
    }

    #[test]
    fn nested_qualifiers_compile() {
        let c = comp("client[broker[market/name/text()='TSE']]/name");
        assert!(c.has_qualifiers());
        // There must be at least: TextTest, Exists, name LabelTest, Step,
        // market LabelTest, Step, Exists, broker LabelTest, Step, Exists.
        assert!(c.qvect_len() >= 8);
    }

    #[test]
    fn attribute_atoms_compile_without_exists() {
        let c = comp("person[@id]/name");
        assert_eq!(c.qvect, vec![QEntry::AttrTest("id".into())]);
        let c = comp("person[@id = \"p7\"]");
        assert_eq!(c.qvect, vec![QEntry::AttrValueTest("id".into(), "p7".into())]);
        let c = comp("item[@price > 10]");
        assert_eq!(c.qvect, vec![QEntry::AttrCmpTest("price".into(), CmpOp::Gt, 10.0)]);
    }

    #[test]
    fn attribute_selection_step_is_a_qualifier() {
        // `p/@id` desugars to `p[@id]`: the selection result is the element.
        let c = comp("site/person/@id");
        assert_eq!(c.selection_steps(), vec!["site", "person"]);
        assert_eq!(c.qvect, vec![QEntry::AttrTest("id".into())]);
    }

    #[test]
    fn selection_positions_become_facts_not_svect_entries() {
        let c = comp("a/b[2]/c");
        assert_eq!(c.svect_len(), 4); // a, b, c + empty prefix
        assert_eq!(c.sel_positions.len(), 1);
        assert_eq!(c.init_len(), 5);
        assert_eq!(c.sel_positions[0].item, 1); // the `b` step
        assert_eq!(c.sel_positions[0].filter.test, PosTest::Label("b".into()));
        assert_eq!(c.sel_positions[0].filter.preds, vec![PosPred::Index(2)]);
        assert!(c.has_positions());
        assert!(!c.has_qualifiers());
    }

    #[test]
    fn stacked_positions_merge_into_one_fact() {
        let c = comp("a[2][last()]");
        assert_eq!(c.sel_positions.len(), 1);
        assert_eq!(c.sel_positions[0].filter.preds, vec![PosPred::Index(2), PosPred::Last]);
        assert_eq!(c.init_len(), c.svect_len() + 1);
        // Positions canonicalize ahead of qualifiers of the same step.
        let c1 = comp("a[b][2]");
        let c2 = comp("a[2][b]");
        assert_eq!(c1.sel_items, c2.sel_items);
        assert_eq!(c1.sel_positions, c2.sel_positions);
    }

    #[test]
    fn qualifier_position_sits_on_the_link() {
        let c = comp(".[b[2]/c]");
        let exists = c
            .qvect
            .iter()
            .find_map(|e| match e {
                QEntry::Exists { axis: QAxis::Child, pos: Some(p), .. } => Some(p.clone()),
                _ => None,
            })
            .expect("anchor with positional filter");
        assert_eq!(exists.test, PosTest::Label("b".into()));
        assert_eq!(exists.preds, vec![PosPred::Index(2)]);
        // Selection-side vectors are untouched by qualifier positions.
        assert!(c.sel_positions.is_empty());
        assert_eq!(c.init_len(), c.svect_len());
    }

    #[test]
    fn position_on_descendant_qualifier_step_is_rejected() {
        let norm = normalize(&parse(".[//b[2]]").unwrap());
        assert_eq!(compile(&norm), Err(XPathError::PositionOnDescendantStep));
    }

    #[test]
    fn positions_under_descendant_selection_steps_are_allowed() {
        let c = comp("//b[2]");
        assert_eq!(c.sel_positions.len(), 1);
        assert_eq!(c.sel_positions[0].item, 1);
    }

    #[test]
    fn cached_compilation_is_equivalent_and_hits() {
        let battery = [
            "client[country/text() = \"US\"]/broker[market/name/text() = \"NASDAQ\"]/name",
            "client[country/text() = \"US\"]/name",
            "//broker[//stock/code/text()=\"goog\"]/name",
            "//broker[//stock/code/text()=\"goog\" and not(//stock/code/text()=\"yhoo\")]/x",
            "a[@id = \"x\" and b[2]/c]/d[last()]",
            "a[@id = \"x\"]/e",
        ];
        let mut cache = CompileCache::new();
        for text in battery {
            let norm = normalize(&parse(text).unwrap());
            let plain = compile(&norm).unwrap();
            let cached = compile_with_cache(&norm, &mut cache).unwrap();
            assert_eq!(plain, cached, "cache changed the compilation of {text}");
        }
        assert!(cache.hits > 0, "overlapping qualifiers must hit the cache");
        assert!(!cache.is_empty());
        assert!(cache.pool_entries() > 0);
        // Recompiling the whole battery is now pure cache hits.
        let misses_before = cache.misses;
        for text in battery {
            let norm = normalize(&parse(text).unwrap());
            compile_with_cache(&norm, &mut cache).unwrap();
        }
        assert_eq!(cache.misses, misses_before);
    }
}

//! Surface abstract syntax for the XPath fragment **X** of §2.2 of the paper:
//!
//! ```text
//! Q := ε | A | * | Q//Q | Q/Q | Q[q]
//! q := Q | q/text() = str | q/val() op num | ¬q | q ∧ q | q ∨ q
//! ```
//!
//! The surface AST mirrors the grammar directly; the normal form used by the
//! evaluation algorithms lives in [`crate::normalize`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Arithmetic comparison operators allowed in `val() op num` qualifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` (the paper writes `≠`)
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the comparison to two numbers.
    pub fn apply(self, left: f64, right: f64) -> bool {
        match self {
            CmpOp::Eq => left == right,
            CmpOp::Ne => left != right,
            CmpOp::Lt => left < right,
            CmpOp::Le => left <= right,
            CmpOp::Gt => left > right,
            CmpOp::Ge => left >= right,
        }
    }

    /// The surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A path expression `Q` of the grammar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PathExpr {
    /// `ε` — the empty path (self). Written `.` in the concrete syntax.
    Empty,
    /// A label test `A`.
    Label(String),
    /// The wildcard `*`.
    Wildcard,
    /// `Q/Q` — child composition.
    Child(Box<PathExpr>, Box<PathExpr>),
    /// `Q//Q` — descendant-or-self composition.
    Descendant(Box<PathExpr>, Box<PathExpr>),
    /// `Q[q]` — qualification.
    Qualified(Box<PathExpr>, Box<Qualifier>),
}

/// A positional predicate `[n]` / `[last()]` — a widening beyond the
/// paper's fragment X. `t[k]` holds at a node `v` iff `v` is the `k`-th
/// (1-based) child among its parent's children matching the step's node test
/// `t`; `[last()]` selects the last such child. Counting is by node test
/// only — independent of the step's other predicates and of predicate order
/// (a documented deviation from full XPath).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PosPred {
    /// `[n]` — the n-th matching sibling (1-based).
    Index(u32),
    /// `[last()]` — the last matching sibling.
    Last,
}

impl fmt::Display for PosPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PosPred::Index(n) => write!(f, "{n}"),
            PosPred::Last => write!(f, "last()"),
        }
    }
}

/// A qualifier `q` of the grammar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Qualifier {
    /// Existential path test: `[Q]` holds at `v` iff some node is reachable
    /// from `v` via `Q`.
    Path(PathExpr),
    /// `[Q/text() = "str"]`.
    TextEquals(PathExpr, String),
    /// `[Q/val() op num]`.
    ValCompare(PathExpr, CmpOp, f64),
    /// `[Q/@attr]` — some node reachable via `Q` carries the attribute
    /// (`[@attr]` when `Q` is `ε`). A widening beyond the paper's X.
    HasAttr(PathExpr, String),
    /// `[Q/@attr = "str"]` — some node reachable via `Q` carries the
    /// attribute with exactly this string value.
    AttrEquals(PathExpr, String, String),
    /// `[Q/@attr op num]` — some node reachable via `Q` carries the
    /// attribute with a numeric value satisfying the comparison.
    AttrCompare(PathExpr, String, CmpOp, f64),
    /// A positional predicate on the step it qualifies (see [`PosPred`]).
    Position(PosPred),
    /// `¬ q` (written `not(q)` or `!q` in the concrete syntax).
    Not(Box<Qualifier>),
    /// `q ∧ q` (written `and` or `&&`).
    And(Box<Qualifier>, Box<Qualifier>),
    /// `q ∨ q` (written `or` or `||`).
    Or(Box<Qualifier>, Box<Qualifier>),
}

/// A complete query: a path expression plus whether it is *absolute*.
///
/// The paper evaluates queries "at the root `r` of `T`". Following standard
/// XPath, a query written with a leading `/` or `//` is anchored at an
/// implicit document node *above* the root element (so `/sites/site` selects
/// `site` children of the `sites` root element), whereas a relative query
/// such as `client/name` starts its first step at the children of the
/// context node. Both forms appear in the paper (the clientele examples are
/// relative, the XMark experiment queries are absolute).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Did the query start with `/` or `//`?
    pub absolute: bool,
    /// The path expression.
    pub path: PathExpr,
}

impl PathExpr {
    /// `a/b` composition helper.
    pub fn child(self, next: PathExpr) -> PathExpr {
        PathExpr::Child(Box::new(self), Box::new(next))
    }

    /// `a//b` composition helper.
    pub fn descendant(self, next: PathExpr) -> PathExpr {
        PathExpr::Descendant(Box::new(self), Box::new(next))
    }

    /// `a[q]` helper.
    pub fn qualified(self, q: Qualifier) -> PathExpr {
        PathExpr::Qualified(Box::new(self), Box::new(q))
    }

    /// A label step.
    pub fn label(name: impl Into<String>) -> PathExpr {
        PathExpr::Label(name.into())
    }

    /// Number of AST nodes — `|Q|` in the paper's complexity bounds.
    pub fn size(&self) -> usize {
        match self {
            PathExpr::Empty | PathExpr::Label(_) | PathExpr::Wildcard => 1,
            PathExpr::Child(a, b) | PathExpr::Descendant(a, b) => 1 + a.size() + b.size(),
            PathExpr::Qualified(p, q) => 1 + p.size() + q.size(),
        }
    }

    /// Does this path (or any nested qualifier) contain a `//` axis?
    pub fn has_descendant_axis(&self) -> bool {
        match self {
            PathExpr::Empty | PathExpr::Label(_) | PathExpr::Wildcard => false,
            PathExpr::Descendant(_, _) => true,
            PathExpr::Child(a, b) => a.has_descendant_axis() || b.has_descendant_axis(),
            PathExpr::Qualified(p, q) => p.has_descendant_axis() || q.has_descendant_axis(),
        }
    }

    /// Does this path carry any qualifier?
    pub fn has_qualifier(&self) -> bool {
        match self {
            PathExpr::Empty | PathExpr::Label(_) | PathExpr::Wildcard => false,
            PathExpr::Child(a, b) | PathExpr::Descendant(a, b) => {
                a.has_qualifier() || b.has_qualifier()
            }
            PathExpr::Qualified(_, _) => true,
        }
    }
}

impl Qualifier {
    /// Conjunction helper.
    pub fn and(self, other: Qualifier) -> Qualifier {
        Qualifier::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Qualifier) -> Qualifier {
        Qualifier::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    pub fn negate(self) -> Qualifier {
        Qualifier::Not(Box::new(self))
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Qualifier::Path(p) => 1 + p.size(),
            Qualifier::TextEquals(p, _) => 2 + p.size(),
            Qualifier::ValCompare(p, _, _) => 2 + p.size(),
            Qualifier::HasAttr(p, _) => 2 + p.size(),
            Qualifier::AttrEquals(p, _, _) => 2 + p.size(),
            Qualifier::AttrCompare(p, _, _, _) => 2 + p.size(),
            Qualifier::Position(_) => 1,
            Qualifier::Not(q) => 1 + q.size(),
            Qualifier::And(a, b) | Qualifier::Or(a, b) => 1 + a.size() + b.size(),
        }
    }

    fn has_descendant_axis(&self) -> bool {
        match self {
            Qualifier::Path(p) => p.has_descendant_axis(),
            Qualifier::TextEquals(p, _) | Qualifier::ValCompare(p, _, _) => p.has_descendant_axis(),
            Qualifier::HasAttr(p, _)
            | Qualifier::AttrEquals(p, _, _)
            | Qualifier::AttrCompare(p, _, _, _) => p.has_descendant_axis(),
            Qualifier::Position(_) => false,
            Qualifier::Not(q) => q.has_descendant_axis(),
            Qualifier::And(a, b) | Qualifier::Or(a, b) => {
                a.has_descendant_axis() || b.has_descendant_axis()
            }
        }
    }
}

impl Query {
    /// Total size `|Q|` of the query.
    pub fn size(&self) -> usize {
        self.path.size()
    }

    /// Does the query (selection path or any qualifier) use `//`?
    pub fn has_descendant_axis(&self) -> bool {
        self.absolute_leading_descendant() || self.path.has_descendant_axis()
    }

    /// Does the query carry qualifiers?
    pub fn has_qualifier(&self) -> bool {
        self.path.has_qualifier()
    }

    fn absolute_leading_descendant(&self) -> bool {
        false // the leading // is already encoded inside `path` by the parser
    }
}

// ---------------------------------------------------------------------------
// Display: renders a query back to concrete syntax (ASCII operators).
// ---------------------------------------------------------------------------

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathExpr::Empty => write!(f, "."),
            PathExpr::Label(l) => write!(f, "{l}"),
            PathExpr::Wildcard => write!(f, "*"),
            PathExpr::Child(a, b) => write!(f, "{a}/{b}"),
            PathExpr::Descendant(a, b) => write!(f, "{a}//{b}"),
            PathExpr::Qualified(p, q) => write!(f, "{p}[{q}]"),
        }
    }
}

impl fmt::Display for Qualifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Qualifier::Path(p) => write!(f, "{p}"),
            Qualifier::TextEquals(p, s) => match p {
                PathExpr::Empty => write!(f, "text() = \"{s}\""),
                _ => write!(f, "{p}/text() = \"{s}\""),
            },
            Qualifier::ValCompare(p, op, n) => match p {
                PathExpr::Empty => write!(f, "val() {op} {n}"),
                _ => write!(f, "{p}/val() {op} {n}"),
            },
            Qualifier::HasAttr(p, a) => match p {
                PathExpr::Empty => write!(f, "@{a}"),
                _ => write!(f, "{p}/@{a}"),
            },
            Qualifier::AttrEquals(p, a, s) => match p {
                PathExpr::Empty => write!(f, "@{a} = \"{s}\""),
                _ => write!(f, "{p}/@{a} = \"{s}\""),
            },
            Qualifier::AttrCompare(p, a, op, n) => match p {
                PathExpr::Empty => write!(f, "@{a} {op} {n}"),
                _ => write!(f, "{p}/@{a} {op} {n}"),
            },
            Qualifier::Position(p) => write!(f, "{p}"),
            Qualifier::Not(q) => write!(f, "not({q})"),
            Qualifier::And(a, b) => write!(f, "({a} and {b})"),
            Qualifier::Or(a, b) => write!(f, "({a} or {b})"),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rendered = self.path.to_string();
        if self.absolute {
            // An absolute query with a leading `//` is parsed as
            // `Descendant(Empty, …)` which renders as `.//…`; strip the dot
            // so the concrete syntax round-trips as `//…`. Other absolute
            // queries get a plain `/` prefix.
            if let Some(stripped) = rendered.strip_prefix("./") {
                write!(f, "/{stripped}")
            } else {
                write!(f, "/{rendered}")
            }
        } else {
            write!(f, "{rendered}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_apply_covers_all_operators() {
        assert!(CmpOp::Eq.apply(2.0, 2.0));
        assert!(!CmpOp::Eq.apply(2.0, 3.0));
        assert!(CmpOp::Ne.apply(2.0, 3.0));
        assert!(CmpOp::Lt.apply(2.0, 3.0));
        assert!(CmpOp::Le.apply(3.0, 3.0));
        assert!(CmpOp::Gt.apply(21.0, 20.0));
        assert!(CmpOp::Ge.apply(20.0, 20.0));
        assert_eq!(CmpOp::Ge.symbol(), ">=");
    }

    #[test]
    fn size_counts_ast_nodes() {
        // //broker[//stock/code/text()="goog"]/name
        let stock_path =
            PathExpr::Empty.descendant(PathExpr::label("stock")).child(PathExpr::label("code"));
        let qual = Qualifier::TextEquals(stock_path, "goog".into());
        let q = PathExpr::Empty
            .descendant(PathExpr::label("broker"))
            .qualified(qual)
            .child(PathExpr::label("name"));
        assert!(q.size() > 8);
        assert!(q.has_descendant_axis());
        assert!(q.has_qualifier());
    }

    #[test]
    fn helpers_build_expected_shapes() {
        let p = PathExpr::label("client").child(PathExpr::label("name"));
        assert_eq!(
            p,
            PathExpr::Child(
                Box::new(PathExpr::Label("client".into())),
                Box::new(PathExpr::Label("name".into()))
            )
        );
        let q = Qualifier::Path(PathExpr::label("a")).and(Qualifier::Path(PathExpr::label("b")));
        assert!(matches!(q, Qualifier::And(_, _)));
        let n = Qualifier::Path(PathExpr::label("a")).negate();
        assert!(matches!(n, Qualifier::Not(_)));
    }

    #[test]
    fn display_renders_readable_syntax() {
        let q = Query {
            absolute: false,
            path: PathExpr::label("client")
                .qualified(Qualifier::TextEquals(PathExpr::label("country"), "US".into()))
                .child(PathExpr::label("name")),
        };
        let s = q.to_string();
        assert!(s.contains("client["));
        assert!(s.contains("country/text() = \"US\""));
        assert!(s.ends_with("/name"));
    }

    #[test]
    fn plain_paths_report_no_qualifier_or_descendant() {
        let q = PathExpr::label("a").child(PathExpr::label("b"));
        assert!(!q.has_descendant_axis());
        assert!(!q.has_qualifier());
    }
}

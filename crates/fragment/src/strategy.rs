//! Fragmentation strategies: convenient ways of choosing cut points.
//!
//! The paper imposes no constraint on how a tree is fragmented (§2.1); these
//! helpers produce the fragmentations its experiments use:
//!
//! * [`cut_at_labels`] — cut at every element with one of the given labels
//!   (e.g. one fragment per XMark "site", the FT1 topology of Fig. 8);
//! * [`cut_children_of_root`] — one fragment per child of the root;
//! * [`cut_by_size`] — greedy bottom-up size balancing: cut whenever a
//!   subtree grows beyond a node budget (used to emulate the unequal
//!   fragment sizes of the FT2 topology);
//! * [`cut_nth_children`] — cut a selected subset of the root's children.

use crate::error::FragmentResult;
use crate::fragmenter::fragment_at;
use crate::model::FragmentedTree;
use paxml_xml::{NodeId, XmlTree};
use std::collections::BTreeSet;

/// Cut at every element whose label is in `labels` (except the root).
pub fn cut_at_labels(tree: &XmlTree, labels: &[&str]) -> FragmentResult<FragmentedTree> {
    let set: BTreeSet<&str> = labels.iter().copied().collect();
    let cuts: Vec<NodeId> = tree
        .all_nodes()
        .filter(|&n| n != tree.root())
        .filter(|&n| tree.label(n).map(|l| set.contains(l)).unwrap_or(false))
        .collect();
    fragment_at(tree, &cuts)
}

/// Cut at every element child of the root: one fragment per top-level
/// subtree plus the (small) root fragment.
pub fn cut_children_of_root(tree: &XmlTree) -> FragmentResult<FragmentedTree> {
    let cuts: Vec<NodeId> = tree.element_children(tree.root()).collect();
    fragment_at(tree, &cuts)
}

/// Cut selected element children of the root, identified by their position
/// among the root's element children.
pub fn cut_nth_children(tree: &XmlTree, positions: &[usize]) -> FragmentResult<FragmentedTree> {
    let children: Vec<NodeId> = tree.element_children(tree.root()).collect();
    let cuts: Vec<NodeId> = positions.iter().filter_map(|&p| children.get(p).copied()).collect();
    fragment_at(tree, &cuts)
}

/// Greedy size-balancing fragmentation: walk the tree bottom-up and cut a
/// node whenever the number of nodes it would keep in its enclosing fragment
/// exceeds `max_nodes`. The root is never cut. The result guarantees that
/// every fragment except possibly the root one has at most `max_nodes` nodes
/// *plus* the sizes of nodes that individually exceed the budget (a single
/// huge flat element cannot be split further, matching the paper's model
/// where fragments are whole subtrees).
pub fn cut_by_size(tree: &XmlTree, max_nodes: usize) -> FragmentResult<FragmentedTree> {
    let max_nodes = max_nodes.max(2);
    // effective_size[n] = nodes of n's subtree that stay in n's own fragment
    // (i.e. excluding the subtrees of descendants already chosen as cuts).
    let mut effective_size: Vec<usize> = vec![0; tree.node_count()];
    let mut cuts: Vec<NodeId> = Vec::new();
    for n in tree.post_order(tree.root()) {
        let mut acc = 1usize; // the node itself
        for c in tree.children(n) {
            let child_size = effective_size[c.index()];
            if acc + child_size > max_nodes && tree.is_element(c) && child_size > 1 {
                // Keeping this child would overflow the enclosing fragment:
                // make the child a fragment root instead.
                cuts.push(c);
                acc += 1; // the virtual placeholder still counts as a node
            } else {
                acc += child_size;
            }
        }
        effective_size[n.index()] = acc;
    }
    fragment_at(tree, &cuts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FragmentId;
    use paxml_xml::{parse, to_string, TreeBuilder};

    fn sites_tree(site_count: usize) -> XmlTree {
        let mut b = TreeBuilder::new("sites");
        for i in 0..site_count {
            b = b
                .open("site")
                .open("people")
                .leaf("person", format!("p{i}"))
                .close()
                .open("regions")
                .leaf("item", format!("i{i}"))
                .close()
                .close();
        }
        b.build()
    }

    #[test]
    fn cut_at_labels_builds_ft1_like_topology() {
        let tree = sites_tree(5);
        let f = cut_at_labels(&tree, &["site"]).unwrap();
        assert_eq!(f.fragment_count(), 6); // root + 5 sites
                                           // Every non-root fragment hangs directly off the root fragment and
                                           // is annotated with "site".
        for id in f.fragment_tree.ids().iter().skip(1) {
            assert_eq!(f.fragment_tree.parent(*id), Some(FragmentId::ROOT));
            assert_eq!(f.fragment_tree.annotation(*id).unwrap().to_string(), "site");
        }
        let back = f.reassemble().unwrap();
        assert_eq!(to_string(&back), to_string(&tree));
    }

    #[test]
    fn cut_children_of_root_cuts_every_top_level_subtree() {
        let tree = sites_tree(3);
        let f = cut_children_of_root(&tree).unwrap();
        assert_eq!(f.fragment_count(), 4);
        assert_eq!(f.root_fragment().size(), 1 + 3); // root element + 3 placeholders
    }

    #[test]
    fn cut_nth_children_selects_a_subset() {
        let tree = sites_tree(4);
        let f = cut_nth_children(&tree, &[0, 2]).unwrap();
        assert_eq!(f.fragment_count(), 3);
        // Positions beyond the child count are ignored.
        let f = cut_nth_children(&tree, &[0, 99]).unwrap();
        assert_eq!(f.fragment_count(), 2);
    }

    #[test]
    fn cut_by_size_bounds_fragment_sizes() {
        let tree = sites_tree(8);
        let total = tree.all_nodes().count();
        let f = cut_by_size(&tree, 10).unwrap();
        assert!(f.fragment_count() > 1, "a {total}-node tree must split under a 10-node budget");
        for frag in &f.fragments {
            // Each fragment stays within the budget plus its placeholders
            // (the root fragment may keep a placeholder per cut).
            assert!(
                frag.size() <= 10 + frag.virtual_children().len(),
                "fragment {} has {} nodes",
                frag.id,
                frag.size()
            );
        }
        let back = f.reassemble().unwrap();
        assert_eq!(to_string(&back), to_string(&tree));
    }

    #[test]
    fn cut_by_size_with_huge_budget_keeps_one_fragment() {
        let tree = sites_tree(2);
        let f = cut_by_size(&tree, 10_000).unwrap();
        assert_eq!(f.fragment_count(), 1);
    }

    #[test]
    fn cut_by_size_never_cuts_below_one_node() {
        let tree = parse("<a><b/><c/><d/></a>").unwrap();
        let f = cut_by_size(&tree, 1).unwrap();
        f.validate().unwrap();
        let back = f.reassemble().unwrap();
        assert_eq!(to_string(&back), to_string(&tree));
    }

    #[test]
    fn label_cut_with_no_matches_yields_single_fragment() {
        let tree = sites_tree(2);
        let f = cut_at_labels(&tree, &["nonexistent"]).unwrap();
        assert_eq!(f.fragment_count(), 1);
        assert!(f.fragment_tree.is_empty());
    }
}

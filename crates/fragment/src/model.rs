//! The fragment and fragment-tree data model.

use crate::error::{FragmentError, FragmentResult};
use paxml_xml::{LabelPath, NodeId, TreeStats, XmlTree};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a fragment (`F0`, `F1`, … in the paper's figures).
/// `FragmentId(0)` is always the root fragment.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct FragmentId(pub usize);

impl FragmentId {
    /// The root fragment (the one containing the root of the original tree).
    pub const ROOT: FragmentId = FragmentId(0);

    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for FragmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// One fragment: a sub-tree of the original document in which every missing
/// sub-fragment is replaced by a virtual node carrying that sub-fragment's
/// [`FragmentId`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fragment {
    /// This fragment's id.
    pub id: FragmentId,
    /// The fragment's tree (roots of sub-fragments replaced by virtual nodes).
    pub tree: XmlTree,
    /// The label of the fragment's root element (kept redundantly so the
    /// fragment tree can be reasoned about without touching fragment data).
    pub root_label: String,
    /// For every node of `tree` (indexed by its arena index), the arena index
    /// of the corresponding node in the *original* unfragmented tree.
    /// Virtual placeholders map to the original node that became the child
    /// fragment's root. Used to give distributed answers a global identity
    /// that tests can compare against centralized evaluation.
    pub origin: Vec<u32>,
}

impl Fragment {
    /// The original-tree node a fragment node corresponds to.
    pub fn origin_of(&self, node: NodeId) -> NodeId {
        NodeId::from_index(self.origin[node.index()] as usize)
    }
    /// The virtual nodes of this fragment together with the sub-fragments
    /// they stand for, in document order.
    pub fn virtual_children(&self) -> Vec<(NodeId, FragmentId)> {
        self.tree
            .virtual_nodes()
            .into_iter()
            .filter_map(|n| self.tree.kind(n).virtual_fragment().map(|f| (n, FragmentId(f))))
            .collect()
    }

    /// Is this a leaf fragment (no sub-fragments)?
    pub fn is_leaf(&self) -> bool {
        self.virtual_children().is_empty()
    }

    /// Number of reachable nodes (including virtual placeholders).
    pub fn size(&self) -> usize {
        self.tree.all_nodes().count()
    }

    /// Statistics of the fragment's tree.
    pub fn stats(&self) -> TreeStats {
        TreeStats::compute(&self.tree)
    }
}

/// The fragment tree `FT`: the parent/child relation between fragments plus
/// the per-edge XPath annotations of §5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FragmentTree {
    parent: BTreeMap<FragmentId, FragmentId>,
    children: BTreeMap<FragmentId, Vec<FragmentId>>,
    /// Annotation of the edge (parent(f), f): the label path in the original
    /// tree from the parent fragment's root to `f`'s root.
    annotations: BTreeMap<FragmentId, LabelPath>,
    ids: Vec<FragmentId>,
}

impl FragmentTree {
    /// Create an empty fragment tree containing only the root fragment.
    pub fn new() -> Self {
        let mut ft = FragmentTree::default();
        ft.ids.push(FragmentId::ROOT);
        ft.children.insert(FragmentId::ROOT, Vec::new());
        ft
    }

    /// Register a new fragment as a child of `parent`, with the given edge
    /// annotation.
    pub fn add_child(&mut self, parent: FragmentId, child: FragmentId, annotation: LabelPath) {
        self.ids.push(child);
        self.parent.insert(child, parent);
        self.children.entry(parent).or_default().push(child);
        self.children.entry(child).or_default();
        self.annotations.insert(child, annotation);
    }

    /// All fragment ids, root first, in creation order.
    pub fn ids(&self) -> &[FragmentId] {
        &self.ids
    }

    /// Number of fragments.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Is the fragment tree trivial (only the root fragment)?
    pub fn is_empty(&self) -> bool {
        self.ids.len() <= 1
    }

    /// The parent of a fragment (`None` for the root fragment).
    pub fn parent(&self, f: FragmentId) -> Option<FragmentId> {
        self.parent.get(&f).copied()
    }

    /// The sub-fragments of a fragment.
    pub fn children(&self, f: FragmentId) -> &[FragmentId] {
        self.children.get(&f).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The annotation of the edge from `parent(f)` to `f` — the label path
    /// connecting the two fragment roots in the original tree. `None` for
    /// the root fragment.
    pub fn annotation(&self, f: FragmentId) -> Option<&LabelPath> {
        self.annotations.get(&f)
    }

    /// The label path from the root of the original tree to the root of `f`
    /// (concatenation of the annotations along the path in `FT`).
    pub fn annotation_from_root(&self, f: FragmentId) -> LabelPath {
        let mut chain = Vec::new();
        let mut current = f;
        while let Some(p) = self.parent(current) {
            if let Some(a) = self.annotation(current) {
                chain.push(a.clone());
            }
            current = p;
        }
        chain.reverse();
        let mut path = LabelPath::empty();
        for part in chain {
            path = path.join(&part);
        }
        path
    }

    /// Fragments in bottom-up order (every fragment appears after all of its
    /// sub-fragments) — the order in which `evalFT` unifies Stage-1 vectors.
    pub fn bottom_up_order(&self) -> Vec<FragmentId> {
        let mut order = self.top_down_order();
        order.reverse();
        order
    }

    /// Fragments in top-down order (every fragment appears before its
    /// sub-fragments) — the order in which `evalFT` unifies Stage-2 vectors.
    pub fn top_down_order(&self) -> Vec<FragmentId> {
        let mut order = Vec::with_capacity(self.ids.len());
        let mut stack = vec![FragmentId::ROOT];
        while let Some(f) = stack.pop() {
            order.push(f);
            for &c in self.children(f).iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// Does the tree contain this fragment?
    pub fn contains(&self, f: FragmentId) -> bool {
        self.ids.contains(&f)
    }

    /// The largest fragment id present (used to allocate fresh ids for
    /// splits: new fragments take `max_id + 1`, never reusing a retired id,
    /// so epoch-pinned readers can never confuse an old fragment's versions
    /// with a new fragment's).
    pub fn max_id(&self) -> FragmentId {
        self.ids.iter().copied().max().unwrap_or(FragmentId::ROOT)
    }

    /// Move `child` under `new_parent`, replacing its edge annotation — the
    /// FT half of a split/merge. Only the touched edge's §5 annotation is
    /// re-derived; every other edge keeps its annotation untouched.
    pub fn reparent(
        &mut self,
        child: FragmentId,
        new_parent: FragmentId,
        annotation: LabelPath,
    ) -> FragmentResult<()> {
        if child == FragmentId::ROOT {
            return Err(FragmentError::Inconsistent {
                message: "the root fragment cannot be re-parented".into(),
            });
        }
        let old = self
            .parent
            .get(&child)
            .copied()
            .ok_or(FragmentError::UnknownFragment { fragment: child.0 })?;
        if !self.contains(new_parent) {
            return Err(FragmentError::UnknownFragment { fragment: new_parent.0 });
        }
        // A fragment must never become its own ancestor.
        let mut cursor = Some(new_parent);
        while let Some(f) = cursor {
            if f == child {
                return Err(FragmentError::Inconsistent {
                    message: format!("re-parenting {child} under {new_parent} creates a cycle"),
                });
            }
            cursor = self.parent(f);
        }
        if let Some(list) = self.children.get_mut(&old) {
            list.retain(|&c| c != child);
        }
        self.children.entry(new_parent).or_default().push(child);
        self.parent.insert(child, new_parent);
        self.annotations.insert(child, annotation);
        Ok(())
    }

    /// Remove a childless, non-root fragment — the final FT step of a merge
    /// (the fragment's own children must have been [`reparent`]ed first).
    ///
    /// [`reparent`]: FragmentTree::reparent
    pub fn remove(&mut self, f: FragmentId) -> FragmentResult<()> {
        if f == FragmentId::ROOT {
            return Err(FragmentError::Inconsistent {
                message: "the root fragment cannot be removed".into(),
            });
        }
        if self.children.get(&f).is_some_and(|c| !c.is_empty()) {
            return Err(FragmentError::Inconsistent {
                message: format!("fragment {f} still has sub-fragments"),
            });
        }
        let parent =
            self.parent.remove(&f).ok_or(FragmentError::UnknownFragment { fragment: f.0 })?;
        if let Some(list) = self.children.get_mut(&parent) {
            list.retain(|&c| c != f);
        }
        self.children.remove(&f);
        self.annotations.remove(&f);
        self.ids.retain(|&i| i != f);
        Ok(())
    }

    /// Depth of a fragment in `FT` (root fragment has depth 0).
    pub fn depth(&self, f: FragmentId) -> usize {
        let mut d = 0;
        let mut current = f;
        while let Some(p) = self.parent(current) {
            d += 1;
            current = p;
        }
        d
    }
}

/// A fully fragmented tree: the fragments plus the induced fragment tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FragmentedTree {
    /// The fragments, indexed by `FragmentId` (fragment `i` is `fragments[i]`).
    pub fragments: Vec<Fragment>,
    /// The induced fragment tree with its annotations.
    pub fragment_tree: FragmentTree,
}

impl FragmentedTree {
    /// Number of fragments.
    pub fn fragment_count(&self) -> usize {
        self.fragments.len()
    }

    /// Borrow a fragment.
    pub fn fragment(&self, id: FragmentId) -> FragmentResult<&Fragment> {
        self.fragments.get(id.index()).ok_or(FragmentError::UnknownFragment { fragment: id.0 })
    }

    /// The root fragment.
    pub fn root_fragment(&self) -> &Fragment {
        &self.fragments[0]
    }

    /// Total number of nodes across all fragments (virtual placeholders
    /// excluded), which must equal the node count of the original tree.
    pub fn total_real_nodes(&self) -> usize {
        self.fragments
            .iter()
            .map(|f| f.tree.all_nodes().filter(|&n| !f.tree.is_virtual(n)).count())
            .sum()
    }

    /// Reassemble the original tree by splicing every sub-fragment back in
    /// place of its virtual node (the data-shipping step of the
    /// `NaiveCentralized` baseline).
    pub fn reassemble(&self) -> FragmentResult<XmlTree> {
        crate::fragmenter::reassemble(self)
    }

    /// Verify internal consistency: every virtual node references an
    /// existing fragment, every non-root fragment is referenced by exactly
    /// one virtual node, and the fragment tree mirrors those references.
    pub fn validate(&self) -> FragmentResult<()> {
        let mut referenced: BTreeMap<FragmentId, usize> = BTreeMap::new();
        for frag in &self.fragments {
            for (_, child) in frag.virtual_children() {
                if child.index() >= self.fragments.len() {
                    return Err(FragmentError::UnknownFragment { fragment: child.0 });
                }
                *referenced.entry(child).or_insert(0) += 1;
                if self.fragment_tree.parent(child) != Some(frag.id) {
                    return Err(FragmentError::Inconsistent {
                        message: format!(
                            "virtual node in {} references {} but FT says its parent is {:?}",
                            frag.id,
                            child,
                            self.fragment_tree.parent(child)
                        ),
                    });
                }
            }
        }
        for frag in &self.fragments {
            if frag.id == FragmentId::ROOT {
                continue;
            }
            match referenced.get(&frag.id) {
                Some(1) => {}
                other => {
                    return Err(FragmentError::Inconsistent {
                        message: format!(
                            "fragment {} referenced by {:?} virtual nodes (expected exactly 1)",
                            frag.id, other
                        ),
                    })
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxml_xml::NodeKind;

    fn tiny_fragmented() -> FragmentedTree {
        // Original tree: <a><b/><c><d/></c></a>; F0 = <a><b/>[F1]</a>, F1 = <c><d/></c>
        let mut t0 = XmlTree::with_root_element("a");
        let r0 = t0.root();
        t0.append_element(r0, "b");
        t0.append_child(r0, NodeKind::virtual_node(1, Some("c".into())));
        let mut t1 = XmlTree::with_root_element("c");
        let r1 = t1.root();
        t1.append_element(r1, "d");

        let mut ft = FragmentTree::new();
        ft.add_child(FragmentId::ROOT, FragmentId(1), LabelPath::parse("c"));
        FragmentedTree {
            fragments: vec![
                Fragment {
                    id: FragmentId::ROOT,
                    tree: t0,
                    root_label: "a".into(),
                    origin: vec![0, 1, 2],
                },
                Fragment {
                    id: FragmentId(1),
                    tree: t1,
                    root_label: "c".into(),
                    origin: vec![2, 3],
                },
            ],
            fragment_tree: ft,
        }
    }

    #[test]
    fn origin_maps_back_to_the_original_tree() {
        let ft = tiny_fragmented();
        let f1 = ft.fragment(FragmentId(1)).unwrap();
        assert_eq!(f1.origin_of(f1.tree.root()).index(), 2);
        let d = f1.tree.find_first("d").unwrap();
        assert_eq!(f1.origin_of(d).index(), 3);
    }

    #[test]
    fn fragment_ids_display_like_the_paper() {
        assert_eq!(FragmentId(3).to_string(), "F3");
        assert_eq!(FragmentId::ROOT.to_string(), "F0");
    }

    #[test]
    fn virtual_children_and_leaf_detection() {
        let ft = tiny_fragmented();
        let root = ft.root_fragment();
        assert_eq!(root.virtual_children().len(), 1);
        assert_eq!(root.virtual_children()[0].1, FragmentId(1));
        assert!(!root.is_leaf());
        assert!(ft.fragment(FragmentId(1)).unwrap().is_leaf());
        assert!(ft.fragment(FragmentId(7)).is_err());
    }

    #[test]
    fn fragment_tree_orders_and_depth() {
        let mut ft = FragmentTree::new();
        ft.add_child(FragmentId(0), FragmentId(1), LabelPath::parse("client/broker"));
        ft.add_child(FragmentId(1), FragmentId(2), LabelPath::parse("market"));
        ft.add_child(FragmentId(0), FragmentId(3), LabelPath::parse("client"));
        assert_eq!(ft.len(), 4);
        assert_eq!(ft.depth(FragmentId(2)), 2);
        let td = ft.top_down_order();
        assert_eq!(td[0], FragmentId(0));
        assert!(
            td.iter().position(|&f| f == FragmentId(1))
                < td.iter().position(|&f| f == FragmentId(2))
        );
        let bu = ft.bottom_up_order();
        assert_eq!(*bu.last().unwrap(), FragmentId(0));
        assert!(
            bu.iter().position(|&f| f == FragmentId(2))
                < bu.iter().position(|&f| f == FragmentId(1))
        );
    }

    #[test]
    fn annotation_from_root_concatenates_edges() {
        let mut ft = FragmentTree::new();
        ft.add_child(FragmentId(0), FragmentId(1), LabelPath::parse("client/broker"));
        ft.add_child(FragmentId(1), FragmentId(2), LabelPath::parse("market"));
        assert_eq!(ft.annotation_from_root(FragmentId(2)).to_string(), "client/broker/market");
        assert_eq!(ft.annotation_from_root(FragmentId(0)).to_string(), "");
        assert_eq!(ft.annotation(FragmentId(1)).unwrap().to_string(), "client/broker");
        assert!(ft.annotation(FragmentId(0)).is_none());
    }

    #[test]
    fn validate_catches_inconsistencies() {
        let ft = tiny_fragmented();
        ft.validate().unwrap();
        // Now corrupt it: claim F1's parent is F1.
        let mut bad = ft.clone();
        bad.fragment_tree = FragmentTree::new();
        bad.fragment_tree.add_child(FragmentId(1), FragmentId(1), LabelPath::empty());
        assert!(bad.validate().is_err());
    }

    #[test]
    fn total_real_nodes_excludes_virtual_placeholders() {
        let ft = tiny_fragmented();
        assert_eq!(ft.total_real_nodes(), 4); // a, b, c, d
    }
}

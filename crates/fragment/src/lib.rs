//! # paxml-fragment — XML tree fragmentation and fragment trees
//!
//! Implements §2.1 and §5 of the paper:
//!
//! * an XML tree `T` is decomposed into a set of **disjoint fragments**
//!   (sub-trees); the place of a missing sub-fragment inside its parent
//!   fragment is held by a **virtual node**;
//! * the fragmentation induces a **fragment tree** `FT` whose nodes are the
//!   fragments and whose edges connect a fragment to its sub-fragments;
//! * every edge of `FT` can carry an **XPath annotation**: the label path in
//!   `T` from the parent fragment's root to the child fragment's root
//!   (Fig. 6), used by the pruning optimization of §5.
//!
//! No constraint is imposed on the fragmentation: fragments may appear at
//! any level, be arbitrarily nested, and have arbitrary sizes — the
//! fragmentation strategies in [`strategy`] are merely convenient ways of
//! choosing cut points.
//!
//! ```
//! use paxml_xml::parse;
//! use paxml_fragment::{fragment_at, strategy};
//!
//! let tree = parse("<clientele><client><broker><market/></broker></client></clientele>").unwrap();
//! let broker = tree.find_first("broker").unwrap();
//! let fragmented = fragment_at(&tree, &[broker]).unwrap();
//! assert_eq!(fragmented.fragment_count(), 2);
//! let reassembled = fragmented.reassemble().unwrap();
//! assert_eq!(paxml_xml::to_string(&reassembled), paxml_xml::to_string(&tree));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fragmenter;
mod model;
mod refrag;
pub mod strategy;
pub mod update;

pub use error::{FragmentError, FragmentResult};
pub use fragmenter::{fragment_at, reassemble, reassemble_with_origin};
pub use model::{Fragment, FragmentId, FragmentTree, FragmentedTree};
pub use refrag::{
    compact_fragmentation, merge_fragment, split_fragment, MergeOutcome, SplitOutcome,
};
pub use update::{apply_all, apply_update, UpdateOp};

//! Error types for fragmentation.

use std::fmt;

/// Result alias for the crate.
pub type FragmentResult<T> = Result<T, FragmentError>;

/// Errors raised while fragmenting or reassembling trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FragmentError {
    /// A cut point was the root of the tree (the root always stays in the
    /// root fragment).
    CannotCutRoot,
    /// The same node was given as a cut point more than once.
    DuplicateCut {
        /// Arena index of the duplicated cut node.
        node: usize,
    },
    /// A cut point does not exist in the tree.
    UnknownCutNode {
        /// The offending arena index.
        node: usize,
    },
    /// A cut point is not an element node (text nodes cannot root fragments).
    CutAtNonElement {
        /// The offending arena index.
        node: usize,
    },
    /// A fragment id was used that is not part of this fragmented tree.
    UnknownFragment {
        /// The offending fragment id.
        fragment: usize,
    },
    /// An update operation was rejected (it addressed a missing node, the
    /// fragment root, a virtual node, or an annotation-path node).
    InvalidUpdate {
        /// Human-readable description.
        message: String,
    },
    /// The fragmented tree is internally inconsistent (e.g. a virtual node
    /// references a fragment that does not exist) — only reachable by
    /// corrupting the structure by hand.
    Inconsistent {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for FragmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FragmentError::CannotCutRoot => write!(f, "cannot cut at the root of the tree"),
            FragmentError::DuplicateCut { node } => write!(f, "duplicate cut point n{node}"),
            FragmentError::UnknownCutNode { node } => write!(f, "unknown cut node n{node}"),
            FragmentError::CutAtNonElement { node } => {
                write!(f, "cut point n{node} is not an element node")
            }
            FragmentError::UnknownFragment { fragment } => {
                write!(f, "unknown fragment F{fragment}")
            }
            FragmentError::InvalidUpdate { message } => {
                write!(f, "invalid fragment update: {message}")
            }
            FragmentError::Inconsistent { message } => {
                write!(f, "inconsistent fragmented tree: {message}")
            }
        }
    }
}

impl std::error::Error for FragmentError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(FragmentError::CannotCutRoot.to_string().contains("root"));
        assert!(FragmentError::DuplicateCut { node: 4 }.to_string().contains("n4"));
        assert!(FragmentError::UnknownFragment { fragment: 9 }.to_string().contains("F9"));
    }
}

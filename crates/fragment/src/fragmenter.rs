//! Cutting a tree into fragments and splicing it back together.

use crate::error::{FragmentError, FragmentResult};
use crate::model::{Fragment, FragmentId, FragmentTree, FragmentedTree};
use paxml_xml::{label_path, LabelPath, NodeId, NodeKind, XmlTree};
use std::collections::{BTreeMap, BTreeSet};

/// Fragment `tree` by cutting at the given nodes: each cut node becomes the
/// root of a new fragment, and its place in the enclosing fragment is taken
/// by a virtual node. Cut nodes may be nested arbitrarily (a cut inside the
/// subtree of another cut produces nested fragments, as in Fig. 1 where `F2`
/// is a sub-fragment of `F1`).
///
/// Fragment ids are assigned in document order of the cut nodes, with the
/// root fragment always receiving `F0`.
pub fn fragment_at(tree: &XmlTree, cuts: &[NodeId]) -> FragmentResult<FragmentedTree> {
    // --- validation --------------------------------------------------------
    let mut cut_set: BTreeSet<NodeId> = BTreeSet::new();
    for &c in cuts {
        if !tree.contains(c) {
            return Err(FragmentError::UnknownCutNode { node: c.index() });
        }
        if c == tree.root() {
            return Err(FragmentError::CannotCutRoot);
        }
        if !tree.is_element(c) {
            return Err(FragmentError::CutAtNonElement { node: c.index() });
        }
        if !cut_set.insert(c) {
            return Err(FragmentError::DuplicateCut { node: c.index() });
        }
    }

    // --- fragment ids in document order ------------------------------------
    let mut fragment_of_cut: BTreeMap<NodeId, FragmentId> = BTreeMap::new();
    let mut cut_roots: Vec<NodeId> = Vec::with_capacity(cut_set.len());
    for n in tree.all_nodes() {
        if cut_set.contains(&n) {
            fragment_of_cut.insert(n, FragmentId(cut_roots.len() + 1));
            cut_roots.push(n);
        }
    }

    // --- build each fragment's tree -----------------------------------------
    // A fragment's tree is a copy of the subtree rooted at its cut node (or
    // the document root for F0) where every *nested* cut node is replaced by
    // a virtual placeholder.
    let mut fragments: Vec<Fragment> = Vec::with_capacity(cut_roots.len() + 1);
    let mut fragment_tree = FragmentTree::new();

    let roots: Vec<(FragmentId, NodeId)> = std::iter::once((FragmentId::ROOT, tree.root()))
        .chain(cut_roots.iter().enumerate().map(|(i, &n)| (FragmentId(i + 1), n)))
        .collect();

    for &(fid, root) in &roots {
        let (tree_copy, origin) = copy_with_virtual_cuts(tree, root, &fragment_of_cut);
        let root_label = tree.label(root).unwrap_or_default().to_string();
        fragments.push(Fragment { id: fid, tree: tree_copy, root_label, origin });
    }

    // --- fragment tree edges and annotations --------------------------------
    // The parent fragment of a cut node c is the fragment owning c's parent:
    // the nearest ancestor that is a cut node (or the root fragment).
    for (i, &c) in cut_roots.iter().enumerate() {
        let child_id = FragmentId(i + 1);
        let mut parent_fragment = FragmentId::ROOT;
        let mut parent_root = tree.root();
        for anc in tree.ancestors(c) {
            if let Some(&fid) = fragment_of_cut.get(&anc) {
                parent_fragment = fid;
                parent_root = anc;
                break;
            }
        }
        let annotation = label_path(tree, parent_root, c).unwrap_or_else(LabelPath::empty);
        fragment_tree.add_child(parent_fragment, child_id, annotation);
    }

    let out = FragmentedTree { fragments, fragment_tree };
    debug_assert!(out.validate().is_ok());
    Ok(out)
}

/// Deep-copy the subtree rooted at `root`, stopping at nested cut nodes and
/// replacing them with virtual placeholders. Also returns, for every node of
/// the copy, the arena index of the original node it corresponds to.
fn copy_with_virtual_cuts(
    tree: &XmlTree,
    root: NodeId,
    fragment_of_cut: &BTreeMap<NodeId, FragmentId>,
) -> (XmlTree, Vec<u32>) {
    let mut out = XmlTree::new(tree.kind(root).clone());
    let out_root = out.root();
    let mut origin: Vec<u32> = vec![root.index() as u32];
    let mut stack: Vec<(NodeId, NodeId)> = vec![(root, out_root)];
    while let Some((src, dst)) = stack.pop() {
        let children: Vec<NodeId> = tree.children(src).collect();
        for c in children {
            if let Some(&fid) = fragment_of_cut.get(&c) {
                // This child starts a different fragment: leave a placeholder.
                let copied = out.append_child(
                    dst,
                    NodeKind::virtual_node(fid.index(), tree.label(c).map(str::to_string)),
                );
                debug_assert_eq!(copied.index(), origin.len());
                origin.push(c.index() as u32);
            } else {
                let copied = out.append_child(dst, tree.kind(c).clone());
                debug_assert_eq!(copied.index(), origin.len());
                origin.push(c.index() as u32);
                stack.push((c, copied));
            }
        }
    }
    (out, origin)
}

/// Splice every sub-fragment back in place of its virtual node, recovering a
/// tree structurally identical to the original (this is what the
/// `NaiveCentralized` baseline does at the query site after shipping all
/// fragments there).
pub fn reassemble(fragmented: &FragmentedTree) -> FragmentResult<XmlTree> {
    fragmented.validate()?;
    build_fragment(fragmented, FragmentId::ROOT)
}

/// Like [`reassemble`], but also return, for every node of the reassembled
/// tree (indexed by its arena index), the arena index of the corresponding
/// node in the *original* tree (via the fragments' origin maps). Needed by
/// the `NaiveCentralized` baseline so its answers carry the same canonical
/// identity as the distributed algorithms'.
pub fn reassemble_with_origin(fragmented: &FragmentedTree) -> FragmentResult<(XmlTree, Vec<u32>)> {
    fragmented.validate()?;
    let root_fragment = fragmented.fragment(FragmentId::ROOT)?;
    let mut out = XmlTree::new(root_fragment.tree.kind(root_fragment.tree.root()).clone());
    let mut origin: Vec<u32> = vec![root_fragment.origin[root_fragment.tree.root().index()]];
    let out_root = out.root();
    splice_children(
        fragmented,
        FragmentId::ROOT,
        root_fragment.tree.root(),
        &mut out,
        out_root,
        &mut origin,
    )?;
    Ok((out, origin))
}

fn splice_children(
    fragmented: &FragmentedTree,
    fragment_id: FragmentId,
    src: NodeId,
    out: &mut XmlTree,
    dst: NodeId,
    origin: &mut Vec<u32>,
) -> FragmentResult<()> {
    let fragment = fragmented.fragment(fragment_id)?;
    let children: Vec<NodeId> = fragment.tree.children(src).collect();
    for c in children {
        if let Some(child_fid) = fragment.tree.kind(c).virtual_fragment() {
            // Splice the whole child fragment in place of the placeholder.
            let child_fid = FragmentId(child_fid);
            let child = fragmented.fragment(child_fid)?;
            let child_root = child.tree.root();
            let copied = out.append_child(dst, child.tree.kind(child_root).clone());
            debug_assert_eq!(copied.index(), origin.len());
            origin.push(child.origin[child_root.index()]);
            splice_children(fragmented, child_fid, child_root, out, copied, origin)?;
        } else {
            let copied = out.append_child(dst, fragment.tree.kind(c).clone());
            debug_assert_eq!(copied.index(), origin.len());
            origin.push(fragment.origin[c.index()]);
            splice_children(fragmented, fragment_id, c, out, copied, origin)?;
        }
    }
    Ok(())
}

fn build_fragment(fragmented: &FragmentedTree, id: FragmentId) -> FragmentResult<XmlTree> {
    // Iterative worklist: start from a copy of the fragment and repeatedly
    // replace virtual nodes by the (recursively assembled) child fragments.
    // Recursion depth equals the fragment-tree depth, which is small, so a
    // simple recursive formulation is fine here.
    let fragment = fragmented.fragment(id)?;
    let mut tree = fragment.tree.clone();
    let virtuals: Vec<(NodeId, FragmentId)> = fragment.virtual_children();
    for (vnode, child_id) in virtuals {
        let child_tree = build_fragment(fragmented, child_id)?;
        // Graft the child tree in place of the virtual node: graft under the
        // virtual node's parent right before detaching the placeholder would
        // lose document order, so instead we graft as a sibling and rely on
        // order-insensitive comparison... Rather than that, we replace the
        // placeholder's payload with the child root's payload and graft the
        // child's children underneath — preserving document order exactly.
        tree.replace_kind(vnode, child_tree.kind(child_tree.root()).clone())
            .map_err(|e| FragmentError::Inconsistent { message: e.to_string() })?;
        let grandchildren: Vec<NodeId> = child_tree.children(child_tree.root()).collect();
        for gc in grandchildren {
            tree.graft_tree(vnode, &child_tree, gc)
                .map_err(|e| FragmentError::Inconsistent { message: e.to_string() })?;
        }
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxml_xml::{parse, to_string, TreeBuilder};

    /// The clientele tree of Fig. 1.
    pub(crate) fn clientele() -> XmlTree {
        TreeBuilder::new("clientele")
            .open("client")
            .leaf("name", "Anna")
            .leaf("country", "US")
            .open("broker")
            .leaf("name", "E*trade")
            .open("market")
            .leaf("name", "NYSE")
            .open("stock")
            .leaf("code", "IBM")
            .leaf("buy", "$80")
            .leaf("qt", "50")
            .close()
            .close()
            .open("market")
            .leaf("name", "NASDAQ")
            .open("stock")
            .leaf("code", "YHOO")
            .leaf("buy", "$33")
            .leaf("qt", "40")
            .close()
            .open("stock")
            .leaf("code", "GOOG")
            .leaf("buy", "$374")
            .leaf("qt", "75")
            .close()
            .close()
            .close()
            .close()
            .open("client")
            .leaf("name", "Kim")
            .leaf("country", "US")
            .open("broker")
            .leaf("name", "Bache")
            .open("market")
            .leaf("name", "NASDAQ")
            .open("stock")
            .leaf("code", "GOOG")
            .leaf("buy", "$370")
            .leaf("qt", "40")
            .close()
            .close()
            .close()
            .close()
            .open("client")
            .leaf("name", "Lisa")
            .leaf("country", "Canada")
            .open("broker")
            .leaf("name", "CIBC")
            .open("market")
            .leaf("name", "TSE")
            .open("stock")
            .leaf("code", "GOOG")
            .leaf("buy", "$382")
            .leaf("qt", "90")
            .close()
            .close()
            .close()
            .close()
            .build()
    }

    /// The Fig. 1/Fig. 2 fragmentation: F1 = Anna's broker subtree,
    /// F2 = the NASDAQ market inside F1, F3 = Lisa's client subtree,
    /// F4 = Kim's NASDAQ market.
    pub(crate) fn clientele_cuts(tree: &XmlTree) -> Vec<NodeId> {
        let brokers = tree.find_all("broker");
        let markets = tree.find_all("market");
        let clients = tree.find_all("client");
        // Anna's broker, Anna's NASDAQ market (2nd market), Lisa's client,
        // Kim's market.
        vec![brokers[0], markets[1], clients[2], markets[2]]
    }

    #[test]
    fn simple_two_fragment_cut() {
        let tree = parse("<a><b><c/></b><d/></a>").unwrap();
        let b = tree.find_first("b").unwrap();
        let f = fragment_at(&tree, &[b]).unwrap();
        assert_eq!(f.fragment_count(), 2);
        let root = f.root_fragment();
        assert_eq!(
            to_string(&root.tree),
            "<a><paxml:fragment-ref fragment=\"1\" root-label=\"b\"/><d/></a>"
        );
        let f1 = f.fragment(FragmentId(1)).unwrap();
        assert_eq!(to_string(&f1.tree), "<b><c/></b>");
        assert_eq!(f.fragment_tree.annotation(FragmentId(1)).unwrap().to_string(), "b");
    }

    #[test]
    fn fig1_fragmentation_produces_expected_fragment_tree() {
        let tree = clientele();
        let cuts = clientele_cuts(&tree);
        let f = fragment_at(&tree, &cuts).unwrap();
        f.validate().unwrap();
        assert_eq!(f.fragment_count(), 5);

        // Fragment ids follow document order of the cut nodes:
        // F1 = Anna's broker, F2 = NASDAQ market under F1, F3 = Kim's market,
        // F4 = Lisa's client. (The paper's figure numbers them differently
        // but the shape of FT is what matters.)
        let ft = &f.fragment_tree;
        assert_eq!(ft.parent(FragmentId(1)), Some(FragmentId(0)));
        assert_eq!(ft.parent(FragmentId(2)), Some(FragmentId(1)));
        assert_eq!(ft.parent(FragmentId(3)), Some(FragmentId(0)));
        assert_eq!(ft.parent(FragmentId(4)), Some(FragmentId(0)));

        // Annotations (Fig. 6): root→broker-fragment is client/broker,
        // broker-fragment→market-fragment is market, root→Kim's market is
        // client/broker/market, root→Lisa's client is client.
        assert_eq!(ft.annotation(FragmentId(1)).unwrap().to_string(), "client/broker");
        assert_eq!(ft.annotation(FragmentId(2)).unwrap().to_string(), "market");
        assert_eq!(ft.annotation(FragmentId(3)).unwrap().to_string(), "client/broker/market");
        assert_eq!(ft.annotation(FragmentId(4)).unwrap().to_string(), "client");
        assert_eq!(ft.annotation_from_root(FragmentId(2)).to_string(), "client/broker/market");

        // The root fragment holds three virtual nodes (F1, F3's market... no:
        // F1, Kim's market F3, Lisa's client F4).
        assert_eq!(f.root_fragment().virtual_children().len(), 3);
    }

    #[test]
    fn reassembly_round_trips_for_many_cut_choices() {
        let tree = clientele();
        let brokers = tree.find_all("broker");
        let markets = tree.find_all("market");
        let stocks = tree.find_all("stock");
        let clients = tree.find_all("client");
        let choices: Vec<Vec<NodeId>> = vec![
            vec![],
            vec![brokers[0]],
            vec![clients[0], clients[1], clients[2]],
            clientele_cuts(&tree),
            markets.clone(),
            stocks.clone(),
            {
                let mut all = Vec::new();
                all.extend(&brokers);
                all.extend(&markets);
                all.extend(&stocks);
                all
            },
        ];
        for cuts in choices {
            let f = fragment_at(&tree, &cuts).unwrap();
            f.validate().unwrap();
            assert_eq!(f.total_real_nodes(), tree.all_nodes().count());
            let back = f.reassemble().unwrap();
            assert_eq!(
                to_string(&back),
                to_string(&tree),
                "round trip failed for {} cuts",
                f.fragment_count() - 1
            );
        }
    }

    #[test]
    fn nested_cuts_produce_nested_fragments() {
        let tree = parse("<a><b><c><d><e/></d></c></b></a>").unwrap();
        let b = tree.find_first("b").unwrap();
        let d = tree.find_first("d").unwrap();
        let f = fragment_at(&tree, &[b, d]).unwrap();
        assert_eq!(f.fragment_count(), 3);
        assert_eq!(f.fragment_tree.parent(FragmentId(2)), Some(FragmentId(1)));
        assert_eq!(f.fragment_tree.annotation(FragmentId(2)).unwrap().to_string(), "c/d");
        assert_eq!(f.fragment_tree.depth(FragmentId(2)), 2);
        let back = f.reassemble().unwrap();
        assert_eq!(to_string(&back), to_string(&tree));
    }

    #[test]
    fn invalid_cuts_are_rejected() {
        let tree = parse("<a><b>hello</b></a>").unwrap();
        let b = tree.find_first("b").unwrap();
        let text = tree.children(b).next().unwrap();
        assert_eq!(fragment_at(&tree, &[tree.root()]), Err(FragmentError::CannotCutRoot));
        assert_eq!(
            fragment_at(&tree, &[b, b]),
            Err(FragmentError::DuplicateCut { node: b.index() })
        );
        assert_eq!(
            fragment_at(&tree, &[text]),
            Err(FragmentError::CutAtNonElement { node: text.index() })
        );
        assert!(matches!(
            fragment_at(&tree, &[NodeId::from_index(999)]),
            Err(FragmentError::UnknownCutNode { .. })
        ));
    }

    #[test]
    fn reassemble_with_origin_maps_every_node_back() {
        let tree = clientele();
        let cuts = clientele_cuts(&tree);
        let f = fragment_at(&tree, &cuts).unwrap();
        let (back, origin) = reassemble_with_origin(&f).unwrap();
        assert_eq!(to_string(&back), to_string(&tree));
        assert_eq!(origin.len(), back.node_count());
        // Every reassembled node has the same label/text as its origin node.
        for n in back.all_nodes() {
            let o = NodeId::from_index(origin[n.index()] as usize);
            assert_eq!(back.label(n), tree.label(o));
            assert_eq!(back.text_value(n), tree.text_value(o));
        }
        // Origins are a permutation of the original node ids.
        let mut sorted: Vec<u32> = origin.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), tree.node_count());
    }

    #[test]
    fn fragment_sizes_sum_to_tree_size_plus_placeholders() {
        let tree = clientele();
        let cuts = clientele_cuts(&tree);
        let f = fragment_at(&tree, &cuts).unwrap();
        let total: usize = f.fragments.iter().map(Fragment::size).sum();
        assert_eq!(total, tree.all_nodes().count() + cuts.len());
    }
}

//! Fragment updates: the write path of a fragmented store.
//!
//! A production deployment does not stay still between queries: sites edit
//! their fragments. This module defines the update operations a site can
//! apply to one of its fragments *without changing the fragment tree* —
//! subtree inserts and deletes, element relabels and text edits — plus the
//! validation that keeps the fragmentation invariants intact:
//!
//! * the fragment's **root** is never deleted or relabelled (its label is
//!   cached in [`Fragment::root_label`] and in the parent's virtual node);
//! * **virtual nodes** are never touched: deleting or inserting around them
//!   would change the fragment tree `FT`, which is a re-fragmentation, not
//!   an update;
//! * no **ancestor of a virtual node** is relabelled, so the XPath
//!   annotations on the edges of `FT` (the label paths of §5) stay exact and
//!   the pruning optimization stays sound.
//!
//! Inserted nodes receive *origin* identities from the caller-provided
//! `origin_base` (see [`Fragment::origin`]): the coordinator hands out
//! disjoint ranges above the original document's node count, so answers
//! rooted at inserted nodes stay globally comparable. Applying the same op
//! sequence to two copies of a fragment yields bit-identical trees and
//! origin maps — the property the incremental-evaluation tests lean on.

use crate::error::{FragmentError, FragmentResult};
use crate::model::Fragment;
use paxml_xml::{NodeId, XmlTree};
use serde::{Deserialize, Serialize};

/// One update to a single fragment. Node ids address the fragment's own
/// arena ([`Fragment::tree`]); they are stable across updates because
/// deletion only detaches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UpdateOp {
    /// Graft a whole subtree (no virtual nodes) as the last child of
    /// `parent`. The `i`-th arena slot the graft allocates gets origin id
    /// `origin_base + i`.
    InsertSubtree {
        /// The element node receiving the subtree.
        parent: NodeId,
        /// The subtree to copy in.
        subtree: XmlTree,
        /// First origin id of the inserted range (caller-assigned, disjoint
        /// from every other range and from the original document's ids).
        origin_base: u32,
    },
    /// Detach the subtree rooted at `node` (which must not contain virtual
    /// nodes and must not be the fragment root).
    DeleteSubtree {
        /// Root of the subtree to remove.
        node: NodeId,
    },
    /// Replace the label of an element node.
    Relabel {
        /// The element to relabel.
        node: NodeId,
        /// Its new label.
        label: String,
    },
    /// Replace the value of a text node.
    EditText {
        /// The text node to edit.
        node: NodeId,
        /// Its new value.
        text: String,
    },
}

impl UpdateOp {
    /// Short human-readable tag, for logs and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            UpdateOp::InsertSubtree { .. } => "insert",
            UpdateOp::DeleteSubtree { .. } => "delete",
            UpdateOp::Relabel { .. } => "relabel",
            UpdateOp::EditText { .. } => "edit-text",
        }
    }
}

fn invalid(message: impl Into<String>) -> FragmentError {
    FragmentError::InvalidUpdate { message: message.into() }
}

/// Is `node` an ancestor of any virtual node of the fragment? Relabelling
/// such a node would invalidate the label-path annotations of `FT`.
fn on_annotation_path(fragment: &Fragment, node: NodeId) -> bool {
    fragment
        .virtual_children()
        .iter()
        .any(|&(vnode, _)| fragment.tree.ancestors(vnode).any(|a| a == node))
}

/// Validate `op` against `fragment` and apply it, maintaining the origin
/// map. Returns the number of nodes the op inserted (0 for the other ops).
///
/// Validation happens *before* mutation, so a rejected op leaves the
/// fragment untouched.
pub fn apply_update(fragment: &mut Fragment, op: &UpdateOp) -> FragmentResult<usize> {
    let tree = &fragment.tree;
    match op {
        UpdateOp::InsertSubtree { parent, subtree, origin_base } => {
            if !tree.is_reachable(*parent) {
                return Err(invalid(format!("insert parent {parent} is not in the fragment")));
            }
            if !tree.is_element(*parent) || tree.is_virtual(*parent) {
                return Err(invalid("insert parent must be a real element node"));
            }
            if subtree.all_nodes().any(|n| subtree.is_virtual(n)) {
                return Err(invalid("inserted subtrees must not contain virtual nodes"));
            }
            let before = fragment.tree.node_count();
            fragment
                .tree
                .graft_tree(*parent, subtree, subtree.root())
                .map_err(|e| invalid(e.to_string()))?;
            let inserted = fragment.tree.node_count() - before;
            for i in 0..inserted {
                fragment.origin.push(origin_base + i as u32);
            }
            Ok(inserted)
        }
        UpdateOp::DeleteSubtree { node } => {
            if *node == tree.root() {
                return Err(invalid("cannot delete the fragment root"));
            }
            if !tree.is_reachable(*node) {
                return Err(invalid(format!("delete target {node} is not in the fragment")));
            }
            if tree.pre_order(*node).any(|n| tree.is_virtual(n)) {
                return Err(invalid(
                    "deleting a subtree holding a virtual node would change the fragment tree",
                ));
            }
            fragment.tree.detach(*node).map_err(|e| invalid(e.to_string()))?;
            Ok(0)
        }
        UpdateOp::Relabel { node, label } => {
            if *node == tree.root() {
                return Err(invalid("cannot relabel the fragment root"));
            }
            if !tree.is_reachable(*node) {
                return Err(invalid(format!("relabel target {node} is not in the fragment")));
            }
            if !tree.is_element(*node) || tree.is_virtual(*node) {
                return Err(invalid("only real element nodes can be relabelled"));
            }
            if on_annotation_path(fragment, *node) {
                return Err(invalid(
                    "relabelling an ancestor of a virtual node would invalidate FT annotations",
                ));
            }
            fragment.tree.relabel(*node, label.clone()).map_err(|e| invalid(e.to_string()))?;
            Ok(0)
        }
        UpdateOp::EditText { node, text } => {
            if !tree.is_reachable(*node) {
                return Err(invalid(format!("text-edit target {node} is not in the fragment")));
            }
            fragment
                .tree
                .set_text_value(*node, text.clone())
                .map_err(|e| invalid(e.to_string()))?;
            Ok(0)
        }
    }
}

/// Apply a sequence of ops in order, stopping at (and returning) the first
/// error. Returns the total number of inserted nodes on success.
pub fn apply_all(fragment: &mut Fragment, ops: &[UpdateOp]) -> FragmentResult<usize> {
    let mut inserted = 0;
    for op in ops {
        inserted += apply_update(fragment, op)?;
    }
    Ok(inserted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragmenter::fragment_at;
    use crate::model::FragmentId;
    use paxml_xml::{parse, to_string, TreeBuilder};

    /// `<a><b><c/></b><d>x</d></a>` cut at `b`: F0 = a(d) + virtual, F1 = b(c).
    fn fragmented() -> crate::model::FragmentedTree {
        let tree = parse("<a><b><c/></b><d>x</d></a>").unwrap();
        let b = tree.find_first("b").unwrap();
        fragment_at(&tree, &[b]).unwrap()
    }

    #[test]
    fn insert_extends_tree_and_origin_map() {
        let f = fragmented();
        let mut frag = f.fragment(FragmentId(1)).unwrap().clone();
        let before_nodes = frag.tree.node_count();
        let subtree = TreeBuilder::new("e").leaf("f", "y").build();
        let c = frag.tree.find_first("c").unwrap();
        let inserted = apply_update(
            &mut frag,
            &UpdateOp::InsertSubtree { parent: c, subtree, origin_base: 100 },
        )
        .unwrap();
        assert_eq!(inserted, 3); // e, f, text
        assert_eq!(frag.tree.node_count(), before_nodes + 3);
        assert_eq!(frag.origin.len(), frag.tree.node_count());
        assert_eq!(to_string(&frag.tree), "<b><c><e><f>y</f></e></c></b>");
        // Inserted nodes carry the assigned origin range.
        let origins: Vec<u32> = frag.origin[before_nodes..].to_vec();
        assert_eq!(origins, vec![100, 101, 102]);
    }

    #[test]
    fn identical_op_sequences_yield_identical_fragments() {
        let f = fragmented();
        let mut a = f.fragment(FragmentId(0)).unwrap().clone();
        let mut b = a.clone();
        let d = a.tree.find_first("d").unwrap();
        let text = a.tree.children(d).next().unwrap();
        let ops = vec![
            UpdateOp::InsertSubtree {
                parent: d,
                subtree: TreeBuilder::new("g").build(),
                origin_base: 50,
            },
            UpdateOp::EditText { node: text, text: "z".into() },
            UpdateOp::Relabel { node: d, label: "dd".into() },
        ];
        apply_all(&mut a, &ops).unwrap();
        apply_all(&mut b, &ops).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn root_and_virtual_nodes_are_protected() {
        let f = fragmented();
        let mut root_frag = f.fragment(FragmentId(0)).unwrap().clone();
        let root = root_frag.tree.root();
        let vnode = root_frag.tree.virtual_nodes()[0];
        assert!(apply_update(&mut root_frag, &UpdateOp::DeleteSubtree { node: root }).is_err());
        assert!(apply_update(&mut root_frag, &UpdateOp::Relabel { node: root, label: "z".into() })
            .is_err());
        // Deleting the virtual node (directly) is rejected.
        assert!(apply_update(&mut root_frag, &UpdateOp::DeleteSubtree { node: vnode }).is_err());
        // Inserting under a virtual node is rejected.
        assert!(apply_update(
            &mut root_frag,
            &UpdateOp::InsertSubtree {
                parent: vnode,
                subtree: TreeBuilder::new("x").build(),
                origin_base: 10,
            }
        )
        .is_err());
    }

    #[test]
    fn annotation_paths_are_protected_from_relabels_and_deletes() {
        // a -> b -> c(virtual cut): b is on the annotation path of the cut.
        let tree = parse("<a><b><c><e/></c></b><d/></a>").unwrap();
        let c = tree.find_first("c").unwrap();
        let f = fragment_at(&tree, &[c]).unwrap();
        let mut root_frag = f.fragment(FragmentId(0)).unwrap().clone();
        let b = root_frag.tree.find_first("b").unwrap();
        let d = root_frag.tree.find_first("d").unwrap();
        // b is an ancestor of the virtual node: relabel rejected, and
        // deleting it would take the virtual node with it — also rejected.
        assert!(apply_update(&mut root_frag, &UpdateOp::Relabel { node: b, label: "z".into() })
            .is_err());
        assert!(apply_update(&mut root_frag, &UpdateOp::DeleteSubtree { node: b }).is_err());
        // d is off the path: both ops fine.
        apply_update(&mut root_frag, &UpdateOp::Relabel { node: d, label: "z".into() }).unwrap();
        assert_eq!(root_frag.tree.label(d), Some("z"));
    }

    #[test]
    fn rejected_ops_leave_the_fragment_untouched() {
        let f = fragmented();
        let mut frag = f.fragment(FragmentId(1)).unwrap().clone();
        let pristine = frag.clone();
        let missing = NodeId::from_index(999);
        for op in [
            UpdateOp::DeleteSubtree { node: missing },
            UpdateOp::Relabel { node: missing, label: "x".into() },
            UpdateOp::EditText { node: missing, text: "x".into() },
            UpdateOp::InsertSubtree {
                parent: missing,
                subtree: TreeBuilder::new("x").build(),
                origin_base: 0,
            },
        ] {
            assert!(apply_update(&mut frag, &op).is_err(), "{} must fail", op.kind());
            assert_eq!(frag, pristine, "{} mutated the fragment before failing", op.kind());
        }
    }

    #[test]
    fn delete_then_reuse_of_node_ids_is_stable() {
        let f = fragmented();
        let mut frag = f.fragment(FragmentId(1)).unwrap().clone();
        let c = frag.tree.find_first("c").unwrap();
        apply_update(&mut frag, &UpdateOp::DeleteSubtree { node: c }).unwrap();
        assert!(!frag.tree.is_reachable(c));
        // Ops addressing the detached node now fail cleanly.
        assert!(apply_update(&mut frag, &UpdateOp::Relabel { node: c, label: "x".into() }).is_err());
        // The arena (and thus ids of surviving nodes) is untouched.
        assert_eq!(frag.tree.find_first("b"), Some(frag.tree.root()));
    }

    #[test]
    fn op_kinds_are_labelled() {
        assert_eq!(UpdateOp::DeleteSubtree { node: NodeId::from_index(1) }.kind(), "delete");
        assert_eq!(
            UpdateOp::EditText { node: NodeId::from_index(1), text: String::new() }.kind(),
            "edit-text"
        );
    }
}

//! Fragment-level surgery for online re-fragmentation.
//!
//! [`split_fragment`] cuts one fragment in two at an interior element;
//! [`merge_fragment`] splices a child fragment back into its parent. Both
//! are *pure*: they take the current fragments and fragment tree by
//! reference and return fresh values, so a coordinator can build the next
//! deployment epoch copy-on-write and publish nothing if anything fails.
//!
//! The §5 annotations are re-derived **incrementally**: only the edges a
//! split/merge actually touches (the new edge, plus the edges of
//! sub-fragments whose virtual nodes moved between the two fragments) get a
//! fresh label path; every other edge of `FT` keeps its annotation
//! untouched. This is what keeps a re-fragmentation `O(|touched subtree|)`
//! instead of `O(|FT|)`.

use crate::error::{FragmentError, FragmentResult};
use crate::model::{Fragment, FragmentId, FragmentTree};
use paxml_xml::{label_path, LabelPath, NodeId, NodeKind, XmlTree};

/// The outcome of [`split_fragment`]: the rewritten original fragment, the
/// newly created sub-fragment, the updated fragment tree, and the
/// sub-fragments whose FT edge moved (their annotations were re-derived).
#[derive(Debug, Clone, PartialEq)]
pub struct SplitOutcome {
    /// The original fragment with the cut subtree replaced by a virtual
    /// placeholder referencing `child`.
    pub parent: Fragment,
    /// The new fragment holding the cut subtree.
    pub child: Fragment,
    /// The fragment tree after the split.
    pub fragment_tree: FragmentTree,
    /// Former sub-fragments of `parent` whose virtual node moved into
    /// `child` — their FT edges were re-parented with fresh annotations.
    pub moved_children: Vec<FragmentId>,
}

/// The outcome of [`merge_fragment`]: the parent with the child's subtree
/// spliced back in, the updated fragment tree, and the child's former
/// sub-fragments (now direct sub-fragments of the parent).
#[derive(Debug, Clone, PartialEq)]
pub struct MergeOutcome {
    /// The parent fragment with the child's data inlined in place of the
    /// virtual node.
    pub merged: Fragment,
    /// The fragment tree after the merge (the child is gone).
    pub fragment_tree: FragmentTree,
    /// The child's former sub-fragments, re-parented under the parent with
    /// joined annotations.
    pub lifted_children: Vec<FragmentId>,
}

/// Split `fragment` at `cut`: the subtree rooted at `cut` becomes a new
/// fragment `new_id`, and its place is taken by a virtual placeholder.
///
/// Validation mirrors the initial fragmenter: the cut must be a reachable
/// element of the fragment (not its root, not a virtual placeholder), and
/// `new_id` must not collide with an existing fragment. Sub-fragments whose
/// virtual node lives inside the cut subtree are re-parented under the new
/// fragment; only those edges plus the new edge get re-derived annotations.
pub fn split_fragment(
    fragment: &Fragment,
    ft: &FragmentTree,
    cut: NodeId,
    new_id: FragmentId,
) -> FragmentResult<SplitOutcome> {
    if !fragment.tree.contains(cut) || !fragment.tree.is_reachable(cut) {
        return Err(FragmentError::UnknownCutNode { node: cut.index() });
    }
    if cut == fragment.tree.root() {
        return Err(FragmentError::CannotCutRoot);
    }
    if !fragment.tree.is_element(cut) {
        return Err(FragmentError::CutAtNonElement { node: cut.index() });
    }
    if ft.contains(new_id) {
        return Err(FragmentError::Inconsistent {
            message: format!("split target id {new_id} already exists in the fragment tree"),
        });
    }
    // The new edge's annotation, derived before any mutation: the label path
    // from the fragment's root to the cut node.
    let annotation =
        label_path(&fragment.tree, fragment.tree.root(), cut).unwrap_or_else(LabelPath::empty);

    // --- the new child fragment: a verbatim copy of the cut subtree -------
    let (child_tree, child_origin) =
        copy_subtree_with_origin(&fragment.tree, cut, &fragment.origin);
    let child_label = fragment.tree.label(cut).unwrap_or_default().to_string();
    let child = Fragment {
        id: new_id,
        tree: child_tree,
        root_label: child_label.clone(),
        origin: child_origin,
    };

    // --- the rewritten parent: cut subtree replaced by a placeholder ------
    let mut parent_tree = fragment.tree.clone();
    let removed: Vec<NodeId> = parent_tree.children(cut).collect();
    for node in removed {
        parent_tree
            .detach(node)
            .map_err(|e| FragmentError::Inconsistent { message: e.to_string() })?;
    }
    parent_tree
        .replace_kind(cut, NodeKind::virtual_node(new_id.index(), Some(child_label)))
        .map_err(|e| FragmentError::Inconsistent { message: e.to_string() })?;
    let parent = Fragment {
        id: fragment.id,
        tree: parent_tree,
        root_label: fragment.root_label.clone(),
        origin: fragment.origin.clone(),
    };

    // --- FT surgery: one new edge, moved virtual nodes re-parented --------
    let mut fragment_tree = ft.clone();
    fragment_tree.add_child(fragment.id, new_id, annotation);
    let mut moved_children = Vec::new();
    for (vnode, sub) in child.virtual_children() {
        let sub_annotation =
            label_path(&child.tree, child.tree.root(), vnode).unwrap_or_else(LabelPath::empty);
        fragment_tree.reparent(sub, new_id, sub_annotation)?;
        moved_children.push(sub);
    }

    Ok(SplitOutcome { parent, child, fragment_tree, moved_children })
}

/// Merge `child` back into `parent`: the child's data replaces the virtual
/// placeholder (preserving document order exactly), the child's
/// sub-fragments become sub-fragments of the parent with joined
/// annotations, and the child disappears from `FT`.
pub fn merge_fragment(
    parent: &Fragment,
    child: &Fragment,
    ft: &FragmentTree,
) -> FragmentResult<MergeOutcome> {
    if ft.parent(child.id) != Some(parent.id) {
        return Err(FragmentError::Inconsistent {
            message: format!(
                "cannot merge {} into {}: FT says its parent is {:?}",
                child.id,
                parent.id,
                ft.parent(child.id)
            ),
        });
    }
    let vnode = parent
        .virtual_children()
        .into_iter()
        .find(|(_, f)| *f == child.id)
        .map(|(n, _)| n)
        .ok_or_else(|| FragmentError::Inconsistent {
            message: format!("{} holds no virtual node for {}", parent.id, child.id),
        })?;

    // --- splice the child's data in place of the placeholder --------------
    let mut tree = parent.tree.clone();
    let mut origin = parent.origin.clone();
    debug_assert_eq!(origin.len(), tree.node_count());
    tree.replace_kind(vnode, child.tree.kind(child.tree.root()).clone())
        .map_err(|e| FragmentError::Inconsistent { message: e.to_string() })?;
    let grandchildren: Vec<NodeId> = child.tree.children(child.tree.root()).collect();
    for gc in grandchildren {
        graft_with_origin(&mut tree, vnode, &child.tree, gc, &child.origin, &mut origin)?;
    }
    let merged = Fragment { id: parent.id, tree, root_label: parent.root_label.clone(), origin };

    // --- FT surgery: lift the child's edges, then drop the child ----------
    let mut fragment_tree = ft.clone();
    let base = ft.annotation(child.id).cloned().unwrap_or_else(LabelPath::empty);
    let mut lifted_children = Vec::new();
    for &sub in ft.children(child.id) {
        let joined = base.join(ft.annotation(sub).unwrap_or(&LabelPath::empty()));
        fragment_tree.reparent(sub, parent.id, joined)?;
        lifted_children.push(sub);
    }
    fragment_tree.remove(child.id)?;

    Ok(MergeOutcome { merged, fragment_tree, lifted_children })
}

/// Re-index a set of fragments into a dense [`FragmentedTree`](crate::model::FragmentedTree).
///
/// After a sequence of splits and merges, fragment ids may have gaps (a
/// merge removes an id, a split allocates past the old maximum), but
/// [`FragmentedTree`](crate::model::FragmentedTree) stores fragments positionally. This translates every
/// id to its rank among the surviving ids — rewriting virtual-node
/// references and rebuilding the fragment tree with its annotations — so
/// the result reassembles and redeploys like a fresh fragmentation. The
/// root fragment keeps id 0 (it is never removed and always sorts first).
pub fn compact_fragmentation(
    fragments: Vec<Fragment>,
    ft: &FragmentTree,
) -> FragmentResult<crate::model::FragmentedTree> {
    let mut ids: Vec<FragmentId> = fragments.iter().map(|f| f.id).collect();
    ids.sort();
    let lookup = |old: FragmentId| -> FragmentResult<FragmentId> {
        ids.binary_search(&old).map(FragmentId).map_err(|_| FragmentError::Inconsistent {
            message: format!("fragment {old} referenced but not present in the set"),
        })
    };
    let mut dense: Vec<Fragment> = Vec::with_capacity(fragments.len());
    for mut f in fragments {
        for (vnode, sub) in f.virtual_children() {
            let new_sub = lookup(sub)?;
            let label = f.tree.label(vnode).map(str::to_string);
            f.tree
                .replace_kind(vnode, NodeKind::virtual_node(new_sub.index(), label))
                .map_err(|e| FragmentError::Inconsistent { message: e.to_string() })?;
        }
        f.id = lookup(f.id)?;
        dense.push(f);
    }
    dense.sort_by_key(|f| f.id);
    let mut dense_ft = FragmentTree::new();
    for f in ft.top_down_order() {
        if let Some(p) = ft.parent(f) {
            let annotation = ft.annotation(f).cloned().unwrap_or_else(LabelPath::empty);
            dense_ft.add_child(lookup(p)?, lookup(f)?, annotation);
        }
    }
    let out = crate::model::FragmentedTree { fragments: dense, fragment_tree: dense_ft };
    out.validate()?;
    Ok(out)
}

/// Deep-copy the subtree at `root` (virtual placeholders copied verbatim),
/// carrying the origin map along so answers out of the new fragment keep
/// their global identity.
fn copy_subtree_with_origin(tree: &XmlTree, root: NodeId, origin: &[u32]) -> (XmlTree, Vec<u32>) {
    let mut out = XmlTree::new(tree.kind(root).clone());
    let mut out_origin: Vec<u32> = vec![origin[root.index()]];
    let mut stack: Vec<(NodeId, NodeId)> = vec![(root, out.root())];
    while let Some((src, dst)) = stack.pop() {
        let children: Vec<NodeId> = tree.children(src).collect();
        for c in children {
            let copied = out.append_child(dst, tree.kind(c).clone());
            debug_assert_eq!(copied.index(), out_origin.len());
            out_origin.push(origin[c.index()]);
            stack.push((c, copied));
        }
    }
    (out, out_origin)
}

/// Copy the subtree of `src` rooted at `src_root` as the last child of
/// `parent` in `dst`, extending `dst`'s origin map in arena order.
fn graft_with_origin(
    dst: &mut XmlTree,
    parent: NodeId,
    src: &XmlTree,
    src_root: NodeId,
    src_origin: &[u32],
    dst_origin: &mut Vec<u32>,
) -> FragmentResult<()> {
    let new_root = dst.append_child(parent, src.kind(src_root).clone());
    debug_assert_eq!(new_root.index(), dst_origin.len());
    dst_origin.push(src_origin[src_root.index()]);
    let mut stack: Vec<(NodeId, NodeId)> = vec![(src_root, new_root)];
    while let Some((s, d)) = stack.pop() {
        let children: Vec<NodeId> = src.children(s).collect();
        for c in children {
            let copied = dst.append_child(d, src.kind(c).clone());
            debug_assert_eq!(copied.index(), dst_origin.len());
            dst_origin.push(src_origin[c.index()]);
            stack.push((c, copied));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::cut_at_labels;
    use paxml_xml::{parse, to_string};

    fn assemble(fragments: Vec<Fragment>, ft: FragmentTree) -> XmlTree {
        compact_fragmentation(fragments, &ft).unwrap().reassemble().unwrap()
    }

    #[test]
    fn split_then_merge_round_trips() {
        let tree = parse("<a><b><c><d/>x</c></b><e/></a>").unwrap();
        let f = cut_at_labels(&tree, &["b"]).unwrap();
        let original = to_string(&tree);

        let f1 = f.fragment(FragmentId(1)).unwrap();
        let cut = f1.tree.find_first("c").unwrap();
        let out = split_fragment(f1, &f.fragment_tree, cut, FragmentId(2)).unwrap();
        assert_eq!(out.fragment_tree.len(), 3);
        assert_eq!(out.fragment_tree.parent(FragmentId(2)), Some(FragmentId(1)));
        assert_eq!(out.fragment_tree.annotation(FragmentId(2)).unwrap().to_string(), "c");
        assert!(out.moved_children.is_empty());
        assert_eq!(to_string(&out.child.tree), "<c><d/>x</c>");

        let back = merge_fragment(&out.parent, &out.child, &out.fragment_tree).unwrap();
        assert_eq!(back.fragment_tree.len(), 2);
        let assembled = assemble(vec![f.root_fragment().clone(), back.merged], back.fragment_tree);
        assert_eq!(to_string(&assembled), original);
    }

    #[test]
    fn split_moves_nested_virtual_children_and_rederives_annotations() {
        // F0=<a>, F1=<b><c><d.../></c></b>, F2=<d>...</d> under F1. Split F1
        // at <c>: F2's virtual node moves into the new fragment.
        let tree = parse("<a><b><c><d><e/></d></c></b></a>").unwrap();
        let b = tree.find_first("b").unwrap();
        let d = tree.find_first("d").unwrap();
        let f = crate::fragmenter::fragment_at(&tree, &[b, d]).unwrap();
        assert_eq!(f.fragment_tree.annotation(FragmentId(2)).unwrap().to_string(), "c/d");

        let f1 = f.fragment(FragmentId(1)).unwrap();
        let cut = f1.tree.find_first("c").unwrap();
        let out = split_fragment(f1, &f.fragment_tree, cut, FragmentId(3)).unwrap();
        assert_eq!(out.moved_children, vec![FragmentId(2)]);
        assert_eq!(out.fragment_tree.parent(FragmentId(2)), Some(FragmentId(3)));
        assert_eq!(out.fragment_tree.parent(FragmentId(3)), Some(FragmentId(1)));
        // Re-derived annotations: F1→F3 is "c", F3→F2 is "d".
        assert_eq!(out.fragment_tree.annotation(FragmentId(3)).unwrap().to_string(), "c");
        assert_eq!(out.fragment_tree.annotation(FragmentId(2)).unwrap().to_string(), "d");
        // The root-to-F2 path is preserved end to end.
        assert_eq!(out.fragment_tree.annotation_from_root(FragmentId(2)).to_string(), "b/c/d");
    }

    #[test]
    fn merge_lifts_grandchildren_with_joined_annotations() {
        let tree = parse("<a><b><c><d><e/></d></c></b></a>").unwrap();
        let b = tree.find_first("b").unwrap();
        let d = tree.find_first("d").unwrap();
        let f = crate::fragmenter::fragment_at(&tree, &[b, d]).unwrap();

        let out = merge_fragment(
            f.fragment(FragmentId(0)).unwrap(),
            f.fragment(FragmentId(1)).unwrap(),
            &f.fragment_tree,
        )
        .unwrap();
        assert_eq!(out.lifted_children, vec![FragmentId(2)]);
        assert!(!out.fragment_tree.contains(FragmentId(1)));
        assert_eq!(out.fragment_tree.parent(FragmentId(2)), Some(FragmentId(0)));
        // Joined annotation: (a→b = "b") ∘ (b→d = "c/d") = "b/c/d".
        assert_eq!(out.fragment_tree.annotation(FragmentId(2)).unwrap().to_string(), "b/c/d");
    }

    #[test]
    fn split_validation_rejects_bad_cuts() {
        let tree = parse("<a><b>hi</b></a>").unwrap();
        let f = cut_at_labels(&tree, &["b"]).unwrap();
        let f1 = f.fragment(FragmentId(1)).unwrap();
        let text = f1.tree.children(f1.tree.root()).next().unwrap();
        assert_eq!(
            split_fragment(f1, &f.fragment_tree, f1.tree.root(), FragmentId(2)),
            Err(FragmentError::CannotCutRoot)
        );
        assert!(matches!(
            split_fragment(f1, &f.fragment_tree, text, FragmentId(2)),
            Err(FragmentError::CutAtNonElement { .. })
        ));
        // Colliding id.
        let c = f.fragment(FragmentId(0)).unwrap();
        let vc = c.tree.virtual_nodes();
        assert!(!vc.is_empty());
        assert!(matches!(
            split_fragment(f1, &f.fragment_tree, f1.tree.root(), FragmentId(1)),
            Err(FragmentError::CannotCutRoot)
        ));
    }

    #[test]
    fn origins_survive_split_and_merge() {
        let tree = parse("<a><b><c><d/></c><e/></b></a>").unwrap();
        let f = cut_at_labels(&tree, &["b"]).unwrap();
        let f1 = f.fragment(FragmentId(1)).unwrap();
        let cut = f1.tree.find_first("c").unwrap();
        let cut_origin = f1.origin_of(cut);
        let out = split_fragment(f1, &f.fragment_tree, cut, FragmentId(2)).unwrap();
        // The child's root maps back to the original <c> node.
        assert_eq!(out.child.origin_of(out.child.tree.root()), cut_origin);
        // The placeholder in the parent keeps the same origin.
        assert_eq!(out.parent.origin_of(cut), cut_origin);
        // Merging restores per-node origins for the spliced data.
        let back = merge_fragment(&out.parent, &out.child, &out.fragment_tree).unwrap();
        let d = back.merged.tree.find_first("d").unwrap();
        let d_orig = tree.find_first("d").unwrap();
        assert_eq!(back.merged.origin_of(d).index(), d_orig.index());
    }
}

//! Property-based tests of the fragmentation layer: for random trees and
//! random (or strategy-derived) cut sets, fragmentation must partition the
//! node set, keep the fragment tree consistent with the virtual-node
//! references, produce annotations that really are the root-to-root label
//! paths, and reassemble to the original document.

use paxml_fragment::{fragment_at, strategy, FragmentId, FragmentedTree};
use paxml_xml::{label_path, to_string, NodeId, NodeKind, XmlTree};
use proptest::prelude::*;
use std::collections::BTreeSet;

const LABELS: &[&str] = &["site", "people", "person", "item", "name"];

fn build_tree(spec: &[(usize, usize)]) -> XmlTree {
    let mut tree = XmlTree::with_root_element("root");
    let mut elements = vec![tree.root()];
    for &(parent_choice, kind) in spec {
        let parent = elements[parent_choice % elements.len()];
        if kind % 4 == 3 {
            tree.append_child(parent, NodeKind::text(format!("t{}", kind)));
        } else {
            elements.push(tree.append_element(parent, LABELS[kind % LABELS.len()]));
        }
    }
    tree
}

fn tree_strategy() -> impl Strategy<Value = XmlTree> {
    prop::collection::vec((0usize..400, 0usize..24), 2..70).prop_map(|spec| build_tree(&spec))
}

fn cuts_for(tree: &XmlTree, picks: &[usize]) -> Vec<NodeId> {
    let candidates: Vec<NodeId> =
        tree.all_nodes().filter(|&n| n != tree.root() && tree.is_element(n)).collect();
    if candidates.is_empty() {
        return Vec::new();
    }
    let mut cuts: Vec<NodeId> = picks.iter().map(|&p| candidates[p % candidates.len()]).collect();
    cuts.sort();
    cuts.dedup();
    cuts
}

/// Shared checks for any fragmentation of any tree.
fn check_fragmentation(tree: &XmlTree, fragmented: &FragmentedTree) -> Result<(), TestCaseError> {
    fragmented.validate().expect("fragmentation must be internally consistent");

    // (1) The real nodes of the fragments partition the original node set.
    prop_assert_eq!(fragmented.total_real_nodes(), tree.all_nodes().count());
    let mut seen_origins: BTreeSet<u32> = BTreeSet::new();
    for fragment in &fragmented.fragments {
        for node in fragment.tree.all_nodes() {
            if !fragment.tree.is_virtual(node) {
                prop_assert!(
                    seen_origins.insert(fragment.origin[node.index()]),
                    "origin node {} appears in two fragments",
                    fragment.origin[node.index()]
                );
            }
        }
    }

    // (2) Every edge annotation is exactly the label path between the two
    //     fragment roots in the original tree.
    for &id in fragmented.fragment_tree.ids() {
        if let Some(parent) = fragmented.fragment_tree.parent(id) {
            let parent_root = fragmented
                .fragment(parent)
                .unwrap()
                .origin_of(fragmented.fragment(parent).unwrap().tree.root());
            let child_root = fragmented
                .fragment(id)
                .unwrap()
                .origin_of(fragmented.fragment(id).unwrap().tree.root());
            let expected = label_path(tree, parent_root, child_root)
                .expect("a parent fragment root is always an ancestor of its children's roots");
            prop_assert_eq!(
                fragmented.fragment_tree.annotation(id).unwrap(),
                &expected,
                "annotation mismatch for {}",
                id
            );
        }
    }

    // (3) Reassembly is the identity (up to serialization).
    let reassembled = fragmented.reassemble().expect("reassembly succeeds");
    prop_assert_eq!(to_string(&reassembled), to_string(tree));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn random_cut_sets_fragment_cleanly(
        tree in tree_strategy(),
        picks in prop::collection::vec(0usize..500, 0..12),
    ) {
        let cuts = cuts_for(&tree, &picks);
        let fragmented = fragment_at(&tree, &cuts).expect("valid cuts");
        prop_assert_eq!(fragmented.fragment_count(), cuts.len() + 1);
        check_fragmentation(&tree, &fragmented)?;
    }

    #[test]
    fn size_balanced_fragmentation_is_sound(
        tree in tree_strategy(),
        budget in 4usize..40,
    ) {
        let fragmented = strategy::cut_by_size(&tree, budget).expect("size strategy succeeds");
        check_fragmentation(&tree, &fragmented)?;
        // The budget is a soft target (a fragment can exceed it only through
        // children too small to form fragments of their own — see the
        // strategy's documentation), but two hard facts always hold:
        // a budget at least as large as the whole tree yields one fragment,
        // and the number of fragments never exceeds the number of elements.
        let elements = tree.all_nodes().filter(|&n| tree.is_element(n)).count();
        prop_assert!(fragmented.fragment_count() <= elements);
        let whole = strategy::cut_by_size(&tree, tree.all_nodes().count() + 1).unwrap();
        prop_assert_eq!(whole.fragment_count(), 1);
    }

    #[test]
    fn label_cuts_place_every_matching_element_at_a_fragment_root(
        tree in tree_strategy(),
        label in prop::sample::select(LABELS.to_vec()),
    ) {
        let fragmented = strategy::cut_at_labels(&tree, &[label]).expect("label strategy succeeds");
        check_fragmentation(&tree, &fragmented)?;
        let expected = tree
            .all_nodes()
            .filter(|&n| n != tree.root() && tree.label(n) == Some(label))
            .count();
        prop_assert_eq!(fragmented.fragment_count(), expected + 1);
        for fragment in fragmented.fragments.iter().skip(1) {
            prop_assert_eq!(fragment.root_label.as_str(), label);
        }
    }

    #[test]
    fn fragment_ids_follow_document_order(
        tree in tree_strategy(),
        picks in prop::collection::vec(0usize..500, 1..10),
    ) {
        let cuts = cuts_for(&tree, &picks);
        let fragmented = fragment_at(&tree, &cuts).expect("valid cuts");
        // Fragment roots, ordered by id, appear in document order of their
        // origin nodes (F1 before F2 before …).
        let mut last_position = None;
        let order: Vec<NodeId> = tree.all_nodes().collect();
        for fragment in fragmented.fragments.iter().skip(1) {
            let origin = fragment.origin_of(fragment.tree.root());
            let position = order.iter().position(|&n| n == origin).unwrap();
            if let Some(last) = last_position {
                prop_assert!(position > last, "fragment ids out of document order");
            }
            last_position = Some(position);
        }
        let _ = FragmentId::ROOT;
    }
}

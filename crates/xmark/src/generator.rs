//! An XMark-like synthetic document generator.
//!
//! The generator reproduces the slice of the XMark schema exercised by the
//! paper's experiment queries (Fig. 7):
//!
//! ```text
//! sites
//! └── site*
//!     ├── regions
//!     │   ├── namerica ── item* (location, quantity, name, description)
//!     │   └── europe   ── item*
//!     ├── people
//!     │   └── person* (name, emailaddress, creditcard?, profile(age, interest*),
//!     │                address(street, city, country))
//!     ├── open_auctions
//!     │   └── auction* (initial, current, annotation(author, description), bidder*)
//!     └── closed_auctions
//!         └── closed_auction* (seller, buyer, price, quantity, annotation(description))
//! ```
//!
//! Sizes are expressed in *virtual megabytes*: `1 vMB` corresponds to
//! [`NODES_PER_VMB`] tree nodes, a deliberately scaled-down unit so that the
//! paper's 100 MB–280 MB experiments run in seconds on a laptop while
//! preserving the relative sizes, selectivities and answer cardinalities
//! that shape the figures (see DESIGN.md, substitution table).

use paxml_xml::{NodeId, XmlTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How many tree nodes one "virtual megabyte" stands for.
pub const NODES_PER_VMB: usize = 2_500;

/// Configuration of the generator.
#[derive(Debug, Clone)]
pub struct XmarkConfig {
    /// Number of XMark "site" subtrees under the `sites` root.
    pub site_count: usize,
    /// Target size of *each* site subtree, in virtual megabytes.
    pub vmb_per_site: f64,
    /// RNG seed — identical seeds produce identical documents.
    pub seed: u64,
    /// Fraction of persons living in the US (drives Q3/Q4 selectivity).
    pub us_fraction: f64,
    /// Fraction of persons that own a credit card.
    pub creditcard_fraction: f64,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig {
            site_count: 1,
            vmb_per_site: 1.0,
            seed: 0x5eed,
            us_fraction: 0.4,
            creditcard_fraction: 0.8,
        }
    }
}

impl XmarkConfig {
    /// A configuration with `site_count` sites totalling `total_vmb` virtual
    /// megabytes (sites of equal size) — the Experiment-1 shape.
    pub fn equal_sites(site_count: usize, total_vmb: f64, seed: u64) -> Self {
        let site_count = site_count.max(1);
        XmarkConfig {
            site_count,
            vmb_per_site: total_vmb / site_count as f64,
            seed,
            ..XmarkConfig::default()
        }
    }
}

/// The generator. Wraps a seeded RNG so repeated calls are reproducible.
pub struct XmarkGenerator {
    config: XmarkConfig,
    rng: StdRng,
    person_counter: usize,
    auction_counter: usize,
    item_counter: usize,
}

const COUNTRIES: &[&str] = &["Canada", "Germany", "France", "Japan", "Brazil", "India"];
const CITIES: &[&str] =
    &["Edinburgh", "Beijing", "Toronto", "Berlin", "Lyon", "Osaka", "Recife", "Pune"];
const FIRST_NAMES: &[&str] =
    &["Anna", "Kim", "Lisa", "Gao", "Wenfei", "Anastasios", "Peter", "Maria", "Ravi", "Yuki"];
const LAST_NAMES: &[&str] =
    &["Cong", "Fan", "Smith", "Mueller", "Tanaka", "Silva", "Patel", "Brown", "Rossi", "Chen"];
const INTERESTS: &[&str] = &["bonds", "stocks", "art", "coins", "antiques", "wine"];
const WORDS: &[&str] = &[
    "partial",
    "evaluation",
    "distributed",
    "query",
    "fragment",
    "vector",
    "boolean",
    "annotation",
    "auction",
    "reserve",
    "bid",
    "catalogue",
    "vintage",
    "shipment",
];

impl XmarkGenerator {
    /// Create a generator for the given configuration.
    pub fn new(config: XmarkConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        XmarkGenerator { config, rng, person_counter: 0, auction_counter: 0, item_counter: 0 }
    }

    /// Generate the whole document: a `sites` root with
    /// `config.site_count` site subtrees.
    pub fn generate(&mut self) -> XmlTree {
        let mut tree = XmlTree::with_root_element("sites");
        let root = tree.root();
        for _ in 0..self.config.site_count {
            let budget = (self.config.vmb_per_site * NODES_PER_VMB as f64) as usize;
            self.generate_site(&mut tree, root, budget);
        }
        tree
    }

    /// Generate one `site` subtree under `parent` with roughly
    /// `node_budget` nodes, split across the four sections with XMark-like
    /// proportions (people 30%, open_auctions 30%, regions 25%,
    /// closed_auctions 15%).
    pub fn generate_site(
        &mut self,
        tree: &mut XmlTree,
        parent: NodeId,
        node_budget: usize,
    ) -> NodeId {
        let node_budget = node_budget.max(60);
        let site = tree.append_element(parent, "site");

        let regions_budget = node_budget * 25 / 100;
        let people_budget = node_budget * 30 / 100;
        let open_budget = node_budget * 30 / 100;
        let closed_budget = node_budget * 15 / 100;

        self.generate_regions(tree, site, regions_budget);
        self.generate_people(tree, site, people_budget);
        self.generate_open_auctions(tree, site, open_budget);
        self.generate_closed_auctions(tree, site, closed_budget);
        site
    }

    fn generate_regions(&mut self, tree: &mut XmlTree, site: NodeId, budget: usize) -> NodeId {
        let regions = tree.append_element(site, "regions");
        let namerica = tree.append_element(regions, "namerica");
        let europe = tree.append_element(regions, "europe");
        // ~12 nodes per item.
        let items = (budget / 12).max(1);
        for i in 0..items {
            let region = if i % 2 == 0 { namerica } else { europe };
            self.generate_item(tree, region);
        }
        regions
    }

    fn generate_item(&mut self, tree: &mut XmlTree, region: NodeId) -> NodeId {
        self.item_counter += 1;
        let item = tree.append_element(region, "item");
        tree.set_attribute(item, "id", format!("item{}", self.item_counter)).unwrap();
        tree.append_leaf(item, "location", self.pick(COUNTRIES).to_string());
        tree.append_leaf(item, "quantity", self.rng.gen_range(1..10).to_string());
        tree.append_leaf(item, "name", format!("item {}", self.item_counter));
        tree.append_leaf(item, "payment", "Creditcard");
        let description = tree.append_element(item, "description");
        tree.append_leaf(description, "text", self.sentence(4));
        item
    }

    fn generate_people(&mut self, tree: &mut XmlTree, site: NodeId, budget: usize) -> NodeId {
        let people = tree.append_element(site, "people");
        // ~16 nodes per person.
        let persons = (budget / 16).max(1);
        for _ in 0..persons {
            self.generate_person(tree, people);
        }
        people
    }

    fn generate_person(&mut self, tree: &mut XmlTree, people: NodeId) -> NodeId {
        self.person_counter += 1;
        let person = tree.append_element(people, "person");
        tree.set_attribute(person, "id", format!("person{}", self.person_counter)).unwrap();
        let name = format!("{} {}", self.pick(FIRST_NAMES), self.pick(LAST_NAMES));
        tree.append_leaf(person, "name", name.clone());
        tree.append_leaf(
            person,
            "emailaddress",
            format!("mailto:{}{}@example.org", name.replace(' ', "."), self.person_counter),
        );
        if self.rng.gen_bool(self.config.creditcard_fraction) {
            let card: String = (0..4)
                .map(|_| format!("{:04}", self.rng.gen_range(0..10_000)))
                .collect::<Vec<_>>()
                .join(" ");
            tree.append_leaf(person, "creditcard", card);
        }
        let profile = tree.append_element(person, "profile");
        tree.append_leaf(profile, "age", self.rng.gen_range(18..70).to_string());
        tree.append_leaf(profile, "education", "Graduate School");
        let interest = tree.append_element(profile, "interest");
        tree.set_attribute(interest, "category", self.pick(INTERESTS).to_string()).unwrap();
        let address = tree.append_element(person, "address");
        tree.append_leaf(address, "street", format!("{} Main Street", self.rng.gen_range(1..100)));
        tree.append_leaf(address, "city", self.pick(CITIES).to_string());
        let country = if self.rng.gen_bool(self.config.us_fraction) {
            "US".to_string()
        } else {
            self.pick(COUNTRIES).to_string()
        };
        tree.append_leaf(address, "country", country);
        person
    }

    fn generate_open_auctions(
        &mut self,
        tree: &mut XmlTree,
        site: NodeId,
        budget: usize,
    ) -> NodeId {
        let auctions = tree.append_element(site, "open_auctions");
        // ~18 nodes per auction.
        let count = (budget / 18).max(1);
        for _ in 0..count {
            self.generate_auction(tree, auctions);
        }
        auctions
    }

    fn generate_auction(&mut self, tree: &mut XmlTree, auctions: NodeId) -> NodeId {
        self.auction_counter += 1;
        let auction = tree.append_element(auctions, "auction");
        tree.set_attribute(auction, "id", format!("auction{}", self.auction_counter)).unwrap();
        tree.append_leaf(auction, "initial", format!("{:.2}", self.rng.gen_range(1.0..200.0)));
        tree.append_leaf(auction, "current", format!("{:.2}", self.rng.gen_range(1.0..400.0)));
        let annotation = tree.append_element(auction, "annotation");
        tree.append_leaf(
            annotation,
            "author",
            format!("person{}", self.rng.gen_range(1..=self.person_counter.max(1))),
        );
        let description = tree.append_element(annotation, "description");
        tree.append_leaf(description, "text", self.sentence(6));
        for _ in 0..self.rng.gen_range(1..4) {
            let bidder = tree.append_element(auction, "bidder");
            tree.append_leaf(bidder, "date", format!("0{}/2007", self.rng.gen_range(1..10)));
            tree.append_leaf(bidder, "increase", format!("{:.2}", self.rng.gen_range(1.0..20.0)));
        }
        auction
    }

    fn generate_closed_auctions(
        &mut self,
        tree: &mut XmlTree,
        site: NodeId,
        budget: usize,
    ) -> NodeId {
        let closed = tree.append_element(site, "closed_auctions");
        // ~12 nodes per closed auction.
        let count = (budget / 12).max(1);
        for _ in 0..count {
            let auction = tree.append_element(closed, "closed_auction");
            tree.append_leaf(
                auction,
                "seller",
                format!("person{}", self.rng.gen_range(1..=self.person_counter.max(1))),
            );
            tree.append_leaf(
                auction,
                "buyer",
                format!("person{}", self.rng.gen_range(1..=self.person_counter.max(1))),
            );
            tree.append_leaf(auction, "price", format!("{:.2}", self.rng.gen_range(1.0..500.0)));
            tree.append_leaf(auction, "quantity", self.rng.gen_range(1..5).to_string());
            let annotation = tree.append_element(auction, "annotation");
            let description = tree.append_element(annotation, "description");
            tree.append_leaf(description, "text", self.sentence(3));
        }
        closed
    }

    fn pick<'a>(&mut self, options: &[&'a str]) -> &'a str {
        options[self.rng.gen_range(0..options.len())]
    }

    fn sentence(&mut self, words: usize) -> String {
        (0..words).map(|_| self.pick(WORDS)).collect::<Vec<_>>().join(" ")
    }
}

/// Convenience: generate a document from a configuration.
pub fn generate(config: XmarkConfig) -> XmlTree {
    XmarkGenerator::new(config).generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxml_xml::TreeStats;
    use paxml_xpath::centralized;

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = generate(XmarkConfig { site_count: 2, vmb_per_site: 0.2, ..Default::default() });
        let b = generate(XmarkConfig { site_count: 2, vmb_per_site: 0.2, ..Default::default() });
        assert_eq!(paxml_xml::to_string(&a), paxml_xml::to_string(&b));
        let c = generate(XmarkConfig {
            site_count: 2,
            vmb_per_site: 0.2,
            seed: 99,
            ..Default::default()
        });
        assert_ne!(paxml_xml::to_string(&a), paxml_xml::to_string(&c));
    }

    #[test]
    fn node_budget_is_respected_within_tolerance() {
        for vmb in [0.5, 1.0, 2.0] {
            let tree =
                generate(XmarkConfig { site_count: 1, vmb_per_site: vmb, ..Default::default() });
            let expected = (vmb * NODES_PER_VMB as f64) as usize;
            let actual = tree.all_nodes().count();
            assert!(
                actual as f64 > expected as f64 * 0.6 && (actual as f64) < expected as f64 * 1.4,
                "vmb={vmb}: expected ~{expected} nodes, got {actual}"
            );
        }
    }

    #[test]
    fn schema_contains_every_element_the_queries_touch() {
        let tree = generate(XmarkConfig { site_count: 2, vmb_per_site: 0.5, ..Default::default() });
        let stats = TreeStats::compute(&tree);
        for label in [
            "site",
            "people",
            "person",
            "profile",
            "age",
            "address",
            "country",
            "creditcard",
            "open_auctions",
            "auction",
            "annotation",
            "closed_auctions",
            "regions",
            "item",
        ] {
            assert!(stats.count_of(label) > 0, "label {label} missing from generated data");
        }
        assert_eq!(stats.count_of("site"), 2);
    }

    #[test]
    fn paper_queries_have_nonempty_answers_with_expected_selectivity() {
        let tree = generate(XmarkConfig { site_count: 2, vmb_per_site: 1.0, ..Default::default() });
        let q1 = centralized::evaluate(&tree, "/sites/site/people/person").unwrap();
        let q2 = centralized::evaluate(&tree, "/sites/site/open_auctions//annotation").unwrap();
        let q3 = centralized::evaluate(
            &tree,
            "/sites/site/people/person[profile/age > 20 and address/country=\"US\"]/creditcard",
        )
        .unwrap();
        let q4 = centralized::evaluate(
            &tree,
            "/sites//people/person[profile/age > 20 and address/country=\"US\"]/creditcard",
        )
        .unwrap();
        assert!(!q1.answers.is_empty());
        assert!(!q2.answers.is_empty());
        assert!(!q3.answers.is_empty());
        // Q3 selects a strict, non-trivial subset of the persons.
        assert!(q3.answers.len() < q1.answers.len());
        assert!(q3.answers.len() * 10 > q1.answers.len());
        // Q4's descendant axis reaches the same people as Q3's explicit path.
        assert_eq!(q3.answers.len(), q4.answers.len());
    }

    #[test]
    fn equal_sites_config_splits_the_total() {
        let c = XmarkConfig::equal_sites(4, 2.0, 7);
        assert_eq!(c.site_count, 4);
        assert!((c.vmb_per_site - 0.5).abs() < 1e-9);
        let tree = generate(c);
        assert_eq!(TreeStats::compute(&tree).count_of("site"), 4);
    }
}

//! Grammar-based random query generation over the widened fragment X.
//!
//! Every property test and the differential harness draw their queries from
//! this one generator, so the whole test suite exercises the same grammar:
//! label and wildcard steps, `/` and `//` axes, nested boolean qualifiers,
//! `text()` and `val()` comparisons, attribute predicates (`[@a]`,
//! `[@a = "s"]`, `[@a > n]`) and positional predicates (`[n]`, `[last()]`).
//!
//! The generator produces **surface ASTs** ([`Query`] values), not strings:
//! that makes the parser round-trip property (`parse(display(q)) == q`)
//! directly expressible, and guarantees by construction that every
//! generated query is inside the accepted language (e.g. positional
//! predicates never land on a descendant-axis qualifier step, which the
//! compiler rejects). [`QueryGen::query_text`] renders to concrete syntax
//! and sometimes re-spells axes verbosely (`/descendant-or-self::`,
//! `/attribute::`) so the alternative spellings stay covered too.
//!
//! Generation is deterministic per seed: two generators with the same
//! config and seed produce the same stream, so failures reported by a
//! fixed-seed CI run reproduce locally.

use paxml_xpath::{CmpOp, PathExpr, PosPred, Qualifier, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Vocabulary and shape knobs for [`QueryGen`].
#[derive(Debug, Clone)]
pub struct QueryGenConfig {
    /// Element labels steps are drawn from.
    pub labels: Vec<String>,
    /// String literals for `text() = "…"` / `@a = "…"` comparisons.
    pub texts: Vec<String>,
    /// Attribute names for attribute predicates.
    pub attrs: Vec<String>,
    /// Maximum number of selection-path steps.
    pub max_steps: usize,
    /// Maximum boolean nesting depth inside qualifiers.
    pub max_qual_depth: usize,
    /// Generate positional predicates (`[n]`, `[last()]`)?
    pub positions: bool,
    /// Generate attribute predicates (`[@a]`, `[@a = "s"]`, `[@a > n]`)?
    pub attributes: bool,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig {
            labels: ["a", "b", "c", "d", "e"].iter().map(|s| s.to_string()).collect(),
            texts: ["x", "y", "10", "42", "US"].iter().map(|s| s.to_string()).collect(),
            attrs: ["id", "age", "price", "vip"].iter().map(|s| s.to_string()).collect(),
            max_steps: 3,
            max_qual_depth: 2,
            positions: true,
            attributes: true,
        }
    }
}

impl QueryGenConfig {
    /// A config over an explicit vocabulary (defaults for the shape knobs).
    pub fn with_vocabulary(labels: &[&str], texts: &[&str], attrs: &[&str]) -> Self {
        QueryGenConfig {
            labels: labels.iter().map(|s| s.to_string()).collect(),
            texts: texts.iter().map(|s| s.to_string()).collect(),
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
            ..QueryGenConfig::default()
        }
    }
}

/// A deterministic random query generator (one stream per seed).
pub struct QueryGen {
    rng: StdRng,
    config: QueryGenConfig,
}

impl QueryGen {
    /// A generator over `config`, seeded for reproducibility.
    pub fn new(config: QueryGenConfig, seed: u64) -> QueryGen {
        QueryGen { rng: StdRng::seed_from_u64(seed), config }
    }

    /// A generator with the default vocabulary.
    pub fn with_seed(seed: u64) -> QueryGen {
        QueryGen::new(QueryGenConfig::default(), seed)
    }

    /// The next random query, as a surface AST in exactly the shape the
    /// parser produces (left-associated compositions, predicates nested on
    /// their step), so `parse(q.to_string()) == q`.
    pub fn query(&mut self) -> Query {
        let absolute = self.rng.gen_bool(0.3);
        let steps = 1 + self.rng.gen_range(0..self.config.max_steps);
        let mut path: Option<PathExpr> = None;
        for i in 0..steps {
            // Leading `//` for the first step; later steps descend with
            // probability ¼.
            let descendant = self.rng.gen_bool(if i == 0 { 0.3 } else { 0.25 });
            let step = self.step();
            path = Some(match path {
                None if descendant => PathExpr::Empty.descendant(step),
                None => step,
                Some(prev) if descendant => prev.descendant(step),
                Some(prev) => prev.child(step),
            });
        }
        Query { absolute, path: path.expect("at least one step") }
    }

    /// The next random query rendered to concrete syntax, occasionally
    /// re-spelled with verbose axes (`/descendant-or-self::`,
    /// `/attribute::`) — same query, alternative surface forms.
    pub fn query_text(&mut self) -> String {
        let mut text = self.query().to_string();
        // Safe textual rewrites: the vocabulary never puts `//` or `/@`
        // inside string literals.
        if self.rng.gen_bool(0.15) {
            text = text.replace("//", "/descendant-or-self::");
        }
        if self.rng.gen_bool(0.15) {
            text = text.replace("/@", "/attribute::");
        }
        text
    }

    /// One selection step: a label or wildcard base plus 0–2 predicates
    /// (positions and/or qualifiers, in random order).
    fn step(&mut self) -> PathExpr {
        let mut step = if self.rng.gen_bool(0.15) {
            PathExpr::Wildcard
        } else {
            PathExpr::Label(self.label())
        };
        let predicates = [0, 0, 0, 1, 1, 2][self.rng.gen_range(0..6)];
        for _ in 0..predicates {
            let q = if self.config.positions && self.rng.gen_bool(0.3) {
                Qualifier::Position(self.position())
            } else {
                self.qualifier(0)
            };
            step = step.qualified(q);
        }
        step
    }

    /// A qualifier, nesting `not`/`and`/`or` down to the configured depth.
    fn qualifier(&mut self, depth: usize) -> Qualifier {
        if depth < self.config.max_qual_depth && self.rng.gen_bool(0.35) {
            return match self.rng.gen_range(0..3) {
                0 => self.qualifier(depth + 1).negate(),
                1 => self.qualifier(depth + 1).and(self.qualifier(depth + 1)),
                _ => self.qualifier(depth + 1).or(self.qualifier(depth + 1)),
            };
        }
        let attr_kinds = if self.config.attributes { 3 } else { 0 };
        match self.rng.gen_range(0..3 + attr_kinds) {
            0 => Qualifier::Path(self.qual_path(1)),
            1 => Qualifier::TextEquals(self.qual_path(0), self.text()),
            2 => Qualifier::ValCompare(self.qual_path(0), self.cmp_op(), self.number()),
            3 => Qualifier::HasAttr(self.qual_path(0), self.attr()),
            4 => Qualifier::AttrEquals(self.qual_path(0), self.attr(), self.text()),
            _ => {
                Qualifier::AttrCompare(self.qual_path(0), self.attr(), self.cmp_op(), self.number())
            }
        }
    }

    /// A path inside a qualifier: `min_steps..=2` label steps. The first
    /// composition may use `//`; positional predicates only ever attach to
    /// child-axis steps (the compiler rejects positions on descendant-axis
    /// qualifier steps).
    fn qual_path(&mut self, min_steps: usize) -> PathExpr {
        let steps = min_steps + self.rng.gen_range(0..3 - min_steps);
        let mut path = PathExpr::Empty;
        let mut wrote = false;
        for i in 0..steps {
            let descendant = i > 0 && self.rng.gen_bool(0.2);
            let mut step = PathExpr::Label(self.label());
            // A nested position, only on a child-axis step: `[b[2]/c]`.
            if self.config.positions && !descendant && self.rng.gen_bool(0.1) {
                step = step.qualified(Qualifier::Position(self.position()));
            }
            path = match (wrote, descendant) {
                (false, _) => step,
                (true, false) => path.child(step),
                (true, true) => path.descendant(step),
            };
            wrote = true;
        }
        path
    }

    fn position(&mut self) -> PosPred {
        if self.rng.gen_bool(0.25) {
            PosPred::Last
        } else {
            PosPred::Index(1 + self.rng.gen_range(0..4) as u32)
        }
    }

    fn cmp_op(&mut self) -> CmpOp {
        [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][self.rng.gen_range(0..6)]
    }

    fn number(&mut self) -> f64 {
        self.rng.gen_range(0..50) as f64
    }

    fn label(&mut self) -> String {
        self.config.labels[self.rng.gen_range(0..self.config.labels.len())].clone()
    }

    fn text(&mut self) -> String {
        self.config.texts[self.rng.gen_range(0..self.config.texts.len())].clone()
    }

    fn attr(&mut self) -> String {
        self.config.attrs[self.rng.gen_range(0..self.config.attrs.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxml_xpath::parse;

    #[test]
    fn same_seed_same_stream() {
        let mut a = QueryGen::with_seed(7);
        let mut b = QueryGen::with_seed(7);
        for _ in 0..50 {
            assert_eq!(a.query(), b.query());
        }
        let mut c = QueryGen::with_seed(8);
        let differs = (0..50).any(|_| QueryGen::with_seed(7).query() != c.query());
        assert!(differs, "different seeds should diverge");
    }

    #[test]
    fn generated_queries_parse_and_round_trip() {
        let mut g = QueryGen::with_seed(42);
        for i in 0..500 {
            let q = g.query();
            let text = q.to_string();
            let back =
                parse(&text).unwrap_or_else(|e| panic!("query {i} `{text}` failed to parse: {e}"));
            assert_eq!(back, q, "round-trip mismatch for `{text}`");
        }
    }

    #[test]
    fn respelled_texts_parse_to_the_same_query() {
        let mut g = QueryGen::with_seed(99);
        for _ in 0..500 {
            let text = g.query_text();
            let q = parse(&text).unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
            // The verbose spellings normalize away: re-rendering and
            // re-parsing is stable.
            assert_eq!(parse(&q.to_string()).unwrap(), q, "unstable respelling `{text}`");
        }
    }

    #[test]
    fn generated_queries_compile() {
        // Everything the generator emits must be accepted end-to-end
        // (normalize + compile), including nested positions.
        let mut g = QueryGen::with_seed(2024);
        for _ in 0..500 {
            let text = g.query_text();
            paxml_xpath::compile_text(&text)
                .unwrap_or_else(|e| panic!("`{text}` failed to compile: {e}"));
        }
    }
}

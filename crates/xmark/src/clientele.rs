//! The paper's running example: the investment-company clientele of Fig. 1
//! and its fragmentation of Fig. 2.

use paxml_fragment::{fragment_at, FragmentedTree};
use paxml_xml::{TreeBuilder, XmlTree};

/// Queries used throughout the paper's narrative over the clientele tree,
/// with a short description of what they return.
pub const CLIENTELE_QUERY_EXAMPLES: &[(&str, &str)] = &[
    (".[//stock/code/text()='GOOG']", "Boolean query of the introduction: is GOOG traded?"),
    (
        "//broker[//stock/code/text()='GOOG']/name",
        "data-selecting query Q' of the introduction: brokers trading GOOG",
    ),
    (
        "//broker[//stock/code/text()='GOOG' and not(//stock/code/text()='YHOO')]/name",
        "query Q1 of §2.2: brokers trading GOOG but not YHOO",
    ),
    (
        "client[country/text()='US']/broker[market/name/text()='NASDAQ']/name",
        "Example 2.1: NASDAQ brokers of US clients",
    ),
    ("client/name", "Example 5.1: the names of all clients"),
];

/// Build the Fig. 1 clientele document: three clients (Anna, Kim, Lisa),
/// their brokers (E*trade, Bache, CIBC), the markets they trade in and the
/// stocks they hold.
pub fn clientele_document() -> XmlTree {
    TreeBuilder::new("clientele")
        .open("client")
        .leaf("name", "Anna")
        .leaf("country", "US")
        .open("broker")
        .leaf("name", "E*trade")
        .open("market")
        .leaf("name", "NYSE")
        .open("stock")
        .leaf("code", "IBM")
        .leaf("buy", "$80")
        .leaf("qt", "50")
        .close()
        .close()
        .open("market")
        .leaf("name", "NASDAQ")
        .open("stock")
        .leaf("code", "YHOO")
        .leaf("buy", "$33")
        .leaf("qt", "40")
        .close()
        .open("stock")
        .leaf("code", "GOOG")
        .leaf("buy", "$374")
        .leaf("qt", "75")
        .close()
        .close()
        .close()
        .close()
        .open("client")
        .leaf("name", "Kim")
        .leaf("country", "US")
        .open("broker")
        .leaf("name", "Bache")
        .open("market")
        .leaf("name", "NASDAQ")
        .open("stock")
        .leaf("code", "GOOG")
        .leaf("buy", "$370")
        .leaf("qt", "40")
        .close()
        .close()
        .close()
        .close()
        .open("client")
        .leaf("name", "Lisa")
        .leaf("country", "Canada")
        .open("broker")
        .leaf("name", "CIBC")
        .open("market")
        .leaf("name", "TSE")
        .open("stock")
        .leaf("code", "GOOG")
        .leaf("buy", "$382")
        .leaf("qt", "90")
        .close()
        .close()
        .close()
        .close()
        .build()
}

/// Fragment the clientele document the way Fig. 1/Fig. 2 do: Anna's broker
/// subtree, the NASDAQ market inside it, Kim's NASDAQ market, and Lisa's
/// whole client subtree each become separate fragments (five fragments
/// F0–F4 in total). Returns the original document together with its
/// fragmentation.
pub fn clientele_fragmentation() -> (XmlTree, FragmentedTree) {
    let tree = clientele_document();
    let brokers = tree.find_all("broker");
    let markets = tree.find_all("market");
    let clients = tree.find_all("client");
    // Anna's broker, Anna's NASDAQ market, Kim's NASDAQ market, Lisa's client.
    let cuts = vec![brokers[0], markets[1], markets[2], clients[2]];
    let fragmented = fragment_at(&tree, &cuts).expect("the Fig. 1 cuts are valid");
    (tree, fragmented)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxml_fragment::FragmentId;
    use paxml_xpath::centralized;

    #[test]
    fn document_matches_fig1() {
        let t = clientele_document();
        assert_eq!(t.find_all("client").len(), 3);
        assert_eq!(t.find_all("broker").len(), 3);
        assert_eq!(t.find_all("market").len(), 4);
        assert_eq!(t.find_all("stock").len(), 5);
        let codes: Vec<String> =
            t.find_all("code").into_iter().filter_map(|n| t.text_of(n)).collect();
        assert_eq!(codes, vec!["IBM", "YHOO", "GOOG", "GOOG", "GOOG"]);
    }

    #[test]
    fn fragmentation_has_five_fragments_with_nested_structure() {
        let (_, fragmented) = clientele_fragmentation();
        assert_eq!(fragmented.fragment_count(), 5);
        fragmented.validate().unwrap();
        // One fragment is nested below another (the NASDAQ market inside
        // Anna's broker fragment), as in Fig. 2.
        let nested = fragmented
            .fragment_tree
            .ids()
            .iter()
            .filter(|&&f| {
                fragmented.fragment_tree.parent(f).map(|p| p != FragmentId::ROOT).unwrap_or(false)
            })
            .count();
        assert_eq!(nested, 1);
    }

    #[test]
    fn example_queries_run_and_return_expected_counts() {
        let t = clientele_document();
        let expectations = [1usize, 3, 2, 2, 3];
        for ((query, _), expected) in CLIENTELE_QUERY_EXAMPLES.iter().zip(expectations) {
            let r = centralized::evaluate(&t, query).unwrap();
            assert_eq!(r.answers.len(), expected, "unexpected answer count for {query}");
        }
    }
}

//! # paxml-xmark — synthetic workloads for the experimental study
//!
//! The paper's experiments run over XMark documents: trees whose root is
//! `sites` and whose children are whole XMark "site" subtrees, fragmented in
//! various ways and distributed over up to ten machines. The original XMark
//! generator (xmlgen) is not redistributable here, so this crate provides a
//! synthetic generator that reproduces the *part of the XMark vocabulary the
//! paper's queries touch* — `people/person/{name, profile/age,
//! address/country, creditcard}`, `open_auctions/auction/annotation`,
//! `closed_auctions`, `regions` — with realistic fan-outs and value
//! distributions, plus a size knob expressed in "virtual megabytes"
//! (`1 vMB` ≈ [`NODES_PER_VMB`] tree nodes). See DESIGN.md for the
//! substitution rationale.
//!
//! It also provides the paper's running example (the Fig. 1 investment
//! clientele and its Fig. 2 fragmentation) and the two experiment topologies
//! of Fig. 8 (FT1 and FT2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clientele;
mod generator;
mod querygen;
mod topology;
mod updates;

pub use clientele::{clientele_document, clientele_fragmentation, CLIENTELE_QUERY_EXAMPLES};
pub use generator::{generate, XmarkConfig, XmarkGenerator, NODES_PER_VMB};
pub use querygen::{QueryGen, QueryGenConfig};
pub use topology::{ft1, ft2, Ft2Layout, PAPER_QUERIES};
pub use updates::{StreamEvent, UpdateWorkload};

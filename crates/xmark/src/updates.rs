//! Update workloads: mixed query/update streams over a fragmented XMark
//! deployment.
//!
//! The paper's experiments are read-only; the incremental-evaluation
//! subsystem needs write traffic. This module generates *valid* random
//! [`UpdateOp`] batches against a fragmented tree: subtree inserts (small
//! XMark-shaped subtrees — persons, items, annotations — whose `country`
//! and `age` values deliberately straddle the Q3/Q4 qualifiers so updates
//! flip answers), subtree deletes, element relabels and text edits. The
//! generator keeps its own **mirror** of the fragments, applies every op it
//! emits, and hands out disjoint origin ranges for inserted nodes — so the
//! emitted stream is exactly reproducible against any other copy of the
//! same fragmentation (the site-held copies of a deployment, a from-scratch
//! reference, …).

use crate::generator::XmarkConfig;
use paxml_fragment::{apply_update, FragmentId, FragmentedTree, UpdateOp};
use paxml_xml::{NodeId, TreeBuilder, XmlTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One event of a mixed workload stream.
#[derive(Debug, Clone)]
pub enum StreamEvent {
    /// Evaluate a query.
    Query(String),
    /// Apply a batch of fragment updates.
    Update(Vec<(FragmentId, UpdateOp)>),
}

/// A generator of valid random update batches over one fragmentation.
pub struct UpdateWorkload {
    mirror: FragmentedTree,
    rng: StdRng,
    next_origin: u32,
    counter: usize,
    us_fraction: f64,
}

impl UpdateWorkload {
    /// Wrap a fragmented tree. `original_nodes` is the node count of the
    /// unfragmented document — inserted nodes get origin ids above it, so
    /// they never collide with original answers.
    pub fn new(fragmented: &FragmentedTree, original_nodes: usize, seed: u64) -> Self {
        UpdateWorkload {
            mirror: fragmented.clone(),
            rng: StdRng::seed_from_u64(seed),
            next_origin: original_nodes as u32,
            counter: 0,
            us_fraction: XmarkConfig::default().us_fraction,
        }
    }

    /// The generator's own up-to-date copy of the fragments (every emitted
    /// op has already been applied to it). Use it to build a from-scratch
    /// reference deployment.
    pub fn mirror(&self) -> &FragmentedTree {
        &self.mirror
    }

    /// Generate one batch of `op_count` valid ops spread over at most
    /// `max_dirty_fragments` distinct fragments, apply them to the mirror,
    /// and return them. Returns fewer ops (possibly none) if the fragments
    /// run out of editable nodes.
    pub fn next_batch(
        &mut self,
        op_count: usize,
        max_dirty_fragments: usize,
    ) -> Vec<(FragmentId, UpdateOp)> {
        let fragment_count = self.mirror.fragment_count();
        let pool_size = max_dirty_fragments.clamp(1, fragment_count);
        // Pick the dirty-fragment pool for this batch.
        let mut pool: Vec<FragmentId> = Vec::with_capacity(pool_size);
        while pool.len() < pool_size {
            let f = FragmentId(self.rng.gen_range(0..fragment_count));
            if !pool.contains(&f) {
                pool.push(f);
            }
        }
        let mut batch = Vec::with_capacity(op_count);
        let mut attempts = 0;
        while batch.len() < op_count && attempts < op_count * 20 {
            attempts += 1;
            let fragment = pool[self.rng.gen_range(0..pool.len())];
            let Some(op) = self.propose_op(fragment) else { continue };
            // The mirror is the same state as every other copy: an op that
            // applies here applies everywhere.
            if apply_update(&mut self.mirror.fragments[fragment.index()], &op).is_ok() {
                batch.push((fragment, op));
            }
        }
        batch
    }

    /// A mixed stream: `rounds` repetitions of one update batch followed by
    /// one of the given queries (round-robin).
    pub fn mixed_stream(
        &mut self,
        rounds: usize,
        ops_per_batch: usize,
        max_dirty_fragments: usize,
        queries: &[&str],
    ) -> Vec<StreamEvent> {
        let mut events = Vec::with_capacity(rounds * 2);
        for i in 0..rounds {
            events.push(StreamEvent::Update(self.next_batch(ops_per_batch, max_dirty_fragments)));
            if !queries.is_empty() {
                events.push(StreamEvent::Query(queries[i % queries.len()].to_string()));
            }
        }
        events
    }

    /// Propose one op against `fragment` (validity is re-checked by actually
    /// applying it to the mirror).
    fn propose_op(&mut self, fragment: FragmentId) -> Option<UpdateOp> {
        let tree = &self.mirror.fragments[fragment.index()].tree;
        let rng = &mut self.rng;
        match rng.gen_range(0..10u32) {
            // Inserts are the most interesting op (they grow answers), so
            // they get the biggest share.
            0..=3 => {
                let parent = random_node(rng, tree, |t, n| {
                    t.is_reachable(n) && t.is_element(n) && !t.is_virtual(n)
                })?;
                let subtree = self.random_subtree();
                let origin_base = self.next_origin;
                self.next_origin += subtree.node_count() as u32;
                Some(UpdateOp::InsertSubtree { parent, subtree, origin_base })
            }
            4..=5 => {
                let root = tree.root();
                let node = random_node(rng, tree, |t, n| {
                    n != root
                        && t.is_reachable(n)
                        && t.is_element(n)
                        && !t.pre_order(n).any(|d| t.is_virtual(d))
                        // Keep deletions small-ish so streams do not wipe
                        // whole fragments in a few ops.
                        && t.subtree_size(n) <= 24
                })?;
                Some(UpdateOp::DeleteSubtree { node })
            }
            6..=7 => {
                let node =
                    random_node(rng, tree, |t, n| t.is_reachable(n) && t.text_value(n).is_some())?;
                let text = self.random_text();
                Some(UpdateOp::EditText { node, text })
            }
            _ => {
                let root = tree.root();
                let node = random_node(rng, tree, |t, n| {
                    n != root && t.is_reachable(n) && t.is_element(n) && !t.is_virtual(n)
                })?;
                self.counter += 1;
                Some(UpdateOp::Relabel { node, label: format!("renamed{}", self.counter % 3) })
            }
        }
    }

    /// A small XMark-shaped subtree. Persons dominate, with `country`/`age`
    /// values on both sides of the Q3/Q4 qualifiers.
    fn random_subtree(&mut self) -> XmlTree {
        self.counter += 1;
        let n = self.counter;
        match self.rng.gen_range(0..3u32) {
            0 => {
                let country = if self.rng.gen_bool(self.us_fraction) { "US" } else { "Japan" };
                let age = self.rng.gen_range(15..60);
                TreeBuilder::new("person")
                    .leaf("name", format!("Inserted Person{n}"))
                    .leaf("creditcard", format!("9999 0000 0000 {n:04}"))
                    .open("profile")
                    .leaf("age", age.to_string())
                    .close()
                    .open("address")
                    .leaf("country", country)
                    .close()
                    .build()
            }
            1 => TreeBuilder::new("item")
                .leaf("quantity", self.rng.gen_range(1..12).to_string())
                .leaf("name", format!("inserted item {n}"))
                .build(),
            _ => TreeBuilder::new("annotation")
                .leaf("author", format!("person{n}"))
                .open("description")
                .leaf("text", "inserted by the update workload")
                .close()
                .build(),
        }
    }

    fn random_text(&mut self) -> String {
        match self.rng.gen_range(0..4u32) {
            0 => "US".to_string(),
            1 => "Germany".to_string(),
            2 => self.rng.gen_range(10..70).to_string(),
            _ => format!("edited text {}", self.counter),
        }
    }
}

/// A uniformly random node satisfying `keep` (rejection sampling over the
/// arena; `None` when nothing qualifies).
fn random_node(
    rng: &mut StdRng,
    tree: &XmlTree,
    keep: impl Fn(&XmlTree, NodeId) -> bool,
) -> Option<NodeId> {
    let candidates: Vec<NodeId> = tree.all_nodes().filter(|&n| keep(tree, n)).collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.gen_range(0..candidates.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ft1;

    #[test]
    fn batches_are_valid_and_reproducible() {
        let (tree, fragmented) = ft1(4, 0.5, 7);
        let nodes = tree.all_nodes().count();
        let mut a = UpdateWorkload::new(&fragmented, nodes, 11);
        let mut b = UpdateWorkload::new(&fragmented, nodes, 11);
        for _ in 0..5 {
            let batch_a = a.next_batch(6, 2);
            let batch_b = b.next_batch(6, 2);
            assert_eq!(batch_a.len(), batch_b.len());
            assert!(!batch_a.is_empty());
            for ((fa, oa), (fb, ob)) in batch_a.iter().zip(&batch_b) {
                assert_eq!(fa, fb);
                assert_eq!(oa, ob);
            }
        }
        // The two mirrors evolved identically.
        for (fa, fb) in a.mirror().fragments.iter().zip(&b.mirror().fragments) {
            assert_eq!(fa, fb);
        }
    }

    #[test]
    fn emitted_ops_apply_cleanly_to_an_independent_copy() {
        let (tree, fragmented) = ft1(3, 0.4, 3);
        let nodes = tree.all_nodes().count();
        let mut copy = fragmented.clone();
        let mut workload = UpdateWorkload::new(&fragmented, nodes, 5);
        for _ in 0..8 {
            for (fragment, op) in workload.next_batch(5, 2) {
                apply_update(&mut copy.fragments[fragment.index()], &op)
                    .expect("emitted ops are valid against any same-state copy");
            }
        }
        // The copy tracked the mirror exactly, and stayed structurally valid.
        for (fa, fb) in copy.fragments.iter().zip(&workload.mirror().fragments) {
            assert_eq!(fa, fb);
            fa.tree.validate().unwrap();
        }
        copy.validate().unwrap();
    }

    #[test]
    fn dirty_fragment_pool_is_respected() {
        let (tree, fragmented) = ft1(8, 0.8, 9);
        let nodes = tree.all_nodes().count();
        let mut workload = UpdateWorkload::new(&fragmented, nodes, 3);
        for _ in 0..6 {
            let batch = workload.next_batch(10, 2);
            let distinct: std::collections::BTreeSet<FragmentId> =
                batch.iter().map(|(f, _)| *f).collect();
            assert!(distinct.len() <= 2, "batch dirtied {} fragments", distinct.len());
        }
    }

    #[test]
    fn inserted_origins_never_collide_with_original_nodes() {
        let (tree, fragmented) = ft1(3, 0.4, 13);
        let nodes = tree.all_nodes().count();
        let mut workload = UpdateWorkload::new(&fragmented, nodes, 1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..10 {
            for (_, op) in workload.next_batch(6, 3) {
                if let UpdateOp::InsertSubtree { subtree, origin_base, .. } = op {
                    for i in 0..subtree.node_count() as u32 {
                        let origin = origin_base + i;
                        assert!(origin >= nodes as u32);
                        assert!(seen.insert(origin), "origin {origin} reused");
                    }
                }
            }
        }
    }

    #[test]
    fn mixed_streams_interleave_updates_and_queries() {
        let (tree, fragmented) = ft1(3, 0.4, 17);
        let nodes = tree.all_nodes().count();
        let mut workload = UpdateWorkload::new(&fragmented, nodes, 23);
        let stream = workload.mixed_stream(4, 3, 2, &["/sites/site/people/person"]);
        assert_eq!(stream.len(), 8);
        assert!(matches!(stream[0], StreamEvent::Update(_)));
        assert!(matches!(stream[1], StreamEvent::Query(_)));
    }
}

//! The two experiment topologies of Fig. 8 and the query set of Fig. 7.

use crate::generator::{XmarkConfig, XmarkGenerator, NODES_PER_VMB};
use paxml_fragment::{fragment_at, FragmentedTree};
use paxml_xml::{NodeId, XmlTree};

/// The four experiment queries of Fig. 7.
pub const PAPER_QUERIES: &[(&str, &str)] = &[
    ("Q1", "/sites/site/people/person"),
    ("Q2", "/sites/site/open_auctions//annotation"),
    ("Q3", "/sites/site/people/person[profile/age > 20 and address/country=\"US\"]/creditcard"),
    ("Q4", "/sites//people/person[profile/age > 20 and address/country=\"US\"]/creditcard"),
];

/// Build the **FT1** topology of Experiment 1: `fragment_count` XMark sites
/// of equal size (totalling `total_vmb` virtual megabytes), each site cut
/// into its own fragment, so the fragment tree is a root fragment with
/// `fragment_count` children annotated `site`.
///
/// Returns the document and its fragmentation. `fragment_count = 1` yields a
/// single un-cut fragment (the first iteration of Experiment 1).
pub fn ft1(fragment_count: usize, total_vmb: f64, seed: u64) -> (XmlTree, FragmentedTree) {
    let fragment_count = fragment_count.max(1);
    let config = XmarkConfig::equal_sites(fragment_count, total_vmb, seed);
    let tree = XmarkGenerator::new(config).generate();
    let cuts: Vec<NodeId> =
        if fragment_count == 1 { Vec::new() } else { tree.element_children(tree.root()).collect() };
    let fragmented = fragment_at(&tree, &cuts).expect("site children are valid cut points");
    (tree, fragmented)
}

/// Relative sizes of the FT2 fragments (Experiment 2). Index = fragment id.
/// The paper's first iteration uses 5 MB for F0–F3, 12 MB for F4, F5, F6 and
/// F8, 28 MB for F7 and 8 MB for F9 (cumulative 100 MB).
#[derive(Debug, Clone, PartialEq)]
pub struct Ft2Layout {
    /// Virtual megabytes per fragment, `[F0, …, F9]`.
    pub vmb: [f64; 10],
}

impl Ft2Layout {
    /// The paper's proportions scaled to a cumulative size of `total_vmb`.
    pub fn scaled_to(total_vmb: f64) -> Self {
        let base = [5.0, 5.0, 5.0, 5.0, 12.0, 12.0, 12.0, 28.0, 12.0, 8.0];
        let sum: f64 = base.iter().sum(); // 104 in the paper's table; keep ratios.
        let mut vmb = [0.0; 10];
        for (i, b) in base.iter().enumerate() {
            vmb[i] = b / sum * total_vmb;
        }
        Ft2Layout { vmb }
    }
}

/// Build the **FT2** topology of Experiments 2 and 3 (right of Fig. 8): four
/// XMark sites where
///
/// * `F0` (the root fragment) keeps the `sites` root and one whole site,
/// * `F3` is another whole site,
/// * the two remaining sites are fragmented further: their `regions`,
///   `open_auctions` and `closed_auctions` subtrees become the
///   sub-fragments `F4`–`F9`, leaving the `people` data in `F1`/`F2`.
///
/// Fragment sizes follow [`Ft2Layout`]; the cumulative document size is
/// `total_vmb`.
pub fn ft2(total_vmb: f64, seed: u64) -> (XmlTree, FragmentedTree) {
    let layout = Ft2Layout::scaled_to(total_vmb);
    let nodes = |vmb: f64| (vmb * NODES_PER_VMB as f64) as usize;

    let mut generator = XmarkGenerator::new(XmarkConfig { seed, ..XmarkConfig::default() });
    let mut tree = XmlTree::with_root_element("sites");
    let root = tree.root();

    // Site A stays entirely inside F0.
    generator.generate_site(&mut tree, root, nodes(layout.vmb[0]));
    // Site B becomes F1 with sub-fragments F4 (regions), F5 (open_auctions),
    // F6 (closed_auctions... the paper shows open_auctions/regions/namerica;
    // the exact labels matter only for which queries can prune them).
    let site_b = generator.generate_site(
        &mut tree,
        root,
        nodes(layout.vmb[1] + layout.vmb[4] + layout.vmb[5] + layout.vmb[6]),
    );
    // Site C becomes F2 with sub-fragments F7 (regions), F8 (open_auctions),
    // F9 (closed_auctions).
    let site_c = generator.generate_site(
        &mut tree,
        root,
        nodes(layout.vmb[2] + layout.vmb[7] + layout.vmb[8] + layout.vmb[9]),
    );
    // Site D is the whole-site fragment F3.
    let site_d = generator.generate_site(&mut tree, root, nodes(layout.vmb[3]));

    let section = |tree: &XmlTree, site: NodeId, label: &str| -> NodeId {
        tree.element_children(site)
            .find(|&c| tree.label(c) == Some(label))
            .expect("every generated site has all four sections")
    };

    let cuts = vec![
        site_b,
        site_c,
        site_d,
        section(&tree, site_b, "regions"),
        section(&tree, site_b, "open_auctions"),
        section(&tree, site_b, "closed_auctions"),
        section(&tree, site_c, "regions"),
        section(&tree, site_c, "open_auctions"),
        section(&tree, site_c, "closed_auctions"),
    ];
    let fragmented = fragment_at(&tree, &cuts).expect("FT2 cut points are valid");
    (tree, fragmented)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxml_fragment::FragmentId;
    use paxml_xpath::centralized;

    #[test]
    fn ft1_produces_one_fragment_per_site() {
        for k in [1usize, 2, 5, 10] {
            let (tree, fragmented) = ft1(k, 2.0, 1);
            assert_eq!(fragmented.fragment_count(), if k == 1 { 1 } else { k + 1 });
            let total = tree.all_nodes().count();
            let expected = 2.0 * NODES_PER_VMB as f64;
            assert!(
                (total as f64) > expected * 0.6 && (total as f64) < expected * 1.4,
                "k={k}: {total} nodes vs expected ~{expected}"
            );
            // Equal-sized fragments (within generator noise).
            if k > 1 {
                let sizes: Vec<usize> =
                    fragmented.fragments.iter().skip(1).map(|f| f.size()).collect();
                let min = *sizes.iter().min().unwrap();
                let max = *sizes.iter().max().unwrap();
                assert!(max < min * 2, "fragment sizes too uneven: {sizes:?}");
            }
        }
    }

    #[test]
    fn ft1_total_size_is_constant_as_fragmentation_increases() {
        let (t2, _) = ft1(2, 4.0, 3);
        let (t8, _) = ft1(8, 4.0, 3);
        let n2 = t2.all_nodes().count() as f64;
        let n8 = t8.all_nodes().count() as f64;
        assert!((n2 - n8).abs() / n2 < 0.35, "sizes diverged: {n2} vs {n8}");
    }

    #[test]
    fn ft2_has_ten_fragments_with_nesting_and_unequal_sizes() {
        let (tree, fragmented) = ft2(4.0, 7);
        assert_eq!(fragmented.fragment_count(), 10);
        fragmented.validate().unwrap();
        let ft = &fragmented.fragment_tree;
        // The root fragment has three sub-fragments (the three cut sites);
        // two of those are fragmented further into three sections each.
        assert_eq!(ft.children(FragmentId(0)).len(), 3);
        let nested_parents: Vec<FragmentId> = ft
            .ids()
            .iter()
            .copied()
            .filter(|&f| f != FragmentId(0) && !ft.children(f).is_empty())
            .collect();
        assert_eq!(nested_parents.len(), 2);
        for p in &nested_parents {
            assert_eq!(ft.children(*p).len(), 3);
        }
        // Sizes are unequal: the biggest non-root fragment is at least twice
        // the smallest.
        let sizes: Vec<usize> = fragmented.fragments.iter().skip(1).map(|f| f.size()).collect();
        assert!(sizes.iter().max().unwrap() > &(2 * sizes.iter().min().unwrap()));
        // The document still answers the paper's queries.
        let q1 = centralized::evaluate(&tree, PAPER_QUERIES[0].1).unwrap();
        assert!(!q1.answers.is_empty());
        // The people data stays inside the site fragments: the nested
        // sub-fragments are rooted at regions/open_auctions/closed_auctions,
        // and the site fragments hang off the root with annotation "site".
        let mut site_edges = 0;
        let mut section_edges = 0;
        for &f in ft.ids().iter().skip(1) {
            let ann = ft.annotation(f).unwrap().to_string();
            match ann.as_str() {
                "site" => site_edges += 1,
                "regions" | "open_auctions" | "closed_auctions" => section_edges += 1,
                other => panic!("unexpected annotation {other} for {f}"),
            }
        }
        assert_eq!(site_edges, 3);
        assert_eq!(section_edges, 6);
    }

    #[test]
    fn ft2_scales_linearly_with_total_vmb() {
        let (small, _) = ft2(2.0, 11);
        let (large, _) = ft2(4.0, 11);
        let ratio = large.all_nodes().count() as f64 / small.all_nodes().count() as f64;
        assert!(ratio > 1.6 && ratio < 2.4, "expected ~2x scaling, got {ratio}");
    }

    #[test]
    fn paper_queries_constant_is_well_formed() {
        assert_eq!(PAPER_QUERIES.len(), 4);
        for (name, text) in PAPER_QUERIES {
            assert!(paxml_xpath::compile_text(text).is_ok(), "{name} fails to compile");
        }
    }
}

//! # paxml — Distributed XPath Query Evaluation with Performance Guarantees
//!
//! A faithful, from-scratch Rust reproduction of
//!
//! > Gao Cong, Wenfei Fan, Anastasios Kementsietsidis.
//! > *Distributed Query Evaluation with Performance Guarantees.* SIGMOD 2007.
//!
//! The paper evaluates generic (data-selecting) XPath queries over an XML
//! tree that is fragmented and distributed over many sites, using **partial
//! evaluation**: each site evaluates the whole query over its fragments in
//! parallel and ships *residual Boolean formulas* instead of data; a
//! coordinator unifies them over the fragment tree. The algorithms guarantee
//! at most three (PaX3) or two (PaX2) visits per site, network traffic in
//! `O(|Q|·|FT| + |answer|)`, and total computation comparable to a
//! centralized evaluation.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`xml`] | `paxml-xml` | Arena XML tree, parser, serializer, builder. |
//! | [`boolex`] | `paxml-boolex` | Residual Boolean formulas and environments. |
//! | [`xpath`] | `paxml-xpath` | The XPath fragment X: parser, normal form, `SVect`/`QVect`, centralized evaluator. |
//! | [`fragment`] | `paxml-fragment` | Fragmentation, fragment trees, XPath annotations, fragment updates. |
//! | [`distsim`] | `paxml-distsim` | Simulated sites, traffic/visit accounting, parallel rounds. |
//! | [`core`] | `paxml-core` | PaX3, PaX2, the batch and incremental engines, the annotation optimization, the naive baseline. |
//! | [`xmark`] | `paxml-xmark` | XMark-like workload generator, the paper's running example, update workloads. |
//!
//! ## Quickstart
//!
//! ```
//! use paxml::prelude::*;
//!
//! // The paper's Fig. 1 clientele, fragmented as in Fig. 2, on 4 sites.
//! let (_tree, fragmented) = paxml::xmark::clientele_fragmentation();
//! let mut deployment = Deployment::new(&fragmented, 4, Placement::RoundRobin);
//!
//! let report = pax2::evaluate(
//!     &mut deployment,
//!     "client[country/text()='US']/broker[market/name/text()='NASDAQ']/name",
//!     &EvalOptions::with_annotations(),
//! ).unwrap();
//!
//! assert_eq!(report.answer_texts(), vec!["E*trade".to_string(), "Bache".to_string()]);
//! assert!(report.max_visits_per_site() <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use paxml_boolex as boolex;
pub use paxml_core as core;
pub use paxml_distsim as distsim;
pub use paxml_fragment as fragment;
pub use paxml_xmark as xmark;
pub use paxml_xml as xml;
pub use paxml_xpath as xpath;

/// The most commonly used items, for `use paxml::prelude::*`.
pub mod prelude {
    pub use paxml_core::{
        batch, incremental, naive, pax2, pax3, BatchReport, Deployment, EvalOptions,
        EvaluationReport, IncrementalEngine, IncrementalReport,
    };
    pub use paxml_distsim::Placement;
    pub use paxml_fragment::{fragment_at, strategy, FragmentId, FragmentedTree, UpdateOp};
    pub use paxml_xml::{parse as parse_xml, TreeBuilder, XmlTree};
    pub use paxml_xpath::{centralized, compile_text, parse as parse_query};
}

//! # paxml — Distributed XPath Query Evaluation with Performance Guarantees
//!
//! A faithful, from-scratch Rust reproduction of
//!
//! > Gao Cong, Wenfei Fan, Anastasios Kementsietsidis.
//! > *Distributed Query Evaluation with Performance Guarantees.* SIGMOD 2007.
//!
//! The paper evaluates generic (data-selecting) XPath queries over an XML
//! tree that is fragmented and distributed over many sites, using **partial
//! evaluation**: each site evaluates the whole query over its fragments in
//! parallel and ships *residual Boolean formulas* instead of data; a
//! coordinator unifies them over the fragment tree. The algorithms guarantee
//! at most three (PaX3) or two (PaX2) visits per site, network traffic in
//! `O(|Q|·|FT| + |answer|)`, and total computation comparable to a
//! centralized evaluation.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`xml`] | `paxml-xml` | Arena XML tree, parser, serializer, builder. |
//! | [`boolex`] | `paxml-boolex` | Residual Boolean formulas and environments. |
//! | [`xpath`] | `paxml-xpath` | The XPath fragment X: parser, normal form, `SVect`/`QVect`, centralized evaluator. |
//! | [`fragment`] | `paxml-fragment` | Fragmentation, fragment trees, XPath annotations, fragment updates. |
//! | [`distsim`] | `paxml-distsim` | Simulated sites, traffic/visit accounting, parallel rounds. |
//! | [`core`] | `paxml-core` | The [`PaxServer`](core::server::PaxServer) session API over PaX3, PaX2, the batch and incremental engines, the annotation optimization, and the naive baseline. |
//! | [`rebalance`] | `paxml-rebalance` | Online re-fragmentation: split/merge/migrate ops and the cost-model-driven placement planner. |
//! | [`xmark`] | `paxml-xmark` | XMark-like workload generator, the paper's running example, update workloads. |
//!
//! ## Quickstart
//!
//! Everything goes through a long-lived [`PaxServer`](core::server::PaxServer)
//! session: deploy once, prepare queries once, then interleave execution,
//! batching and fragment updates — every call returns one unified
//! [`ExecReport`](core::ExecReport) metering exactly that execution.
//!
//! ```
//! use paxml::prelude::*;
//!
//! // The paper's Fig. 1 clientele, fragmented as in Fig. 2, on 4 sites.
//! let (_tree, fragmented) = paxml::xmark::clientele_fragmentation();
//! let mut server = PaxServer::builder()
//!     .algorithm(Algorithm::PaX2)
//!     .annotations(true)
//!     .placement(Placement::RoundRobin)
//!     .sites(4)
//!     .deploy(&fragmented)
//!     .unwrap();
//!
//! // Compile once, execute as often as you like.
//! let q = server
//!     .prepare("client[country/text()='US']/broker[market/name/text()='NASDAQ']/name")
//!     .unwrap();
//! let report = server.execute(&q).unwrap();
//! assert_eq!(report.answer_texts(), vec!["E*trade".to_string(), "Bache".to_string()]);
//! assert!(report.max_visits_per_site() <= 2);
//!
//! // Re-execution is served from the maintained residual-vector cache.
//! assert_eq!(server.execute(&q).unwrap().max_visits_per_site(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use paxml_boolex as boolex;
pub use paxml_core as core;
pub use paxml_distsim as distsim;
pub use paxml_fragment as fragment;
pub use paxml_rebalance as rebalance;
pub use paxml_wire as wire;
pub use paxml_xmark as xmark;
pub use paxml_xml as xml;
pub use paxml_xpath as xpath;

/// The most commonly used items, for `use paxml::prelude::*`.
pub mod prelude {
    pub use paxml_core::server::{PaxServer, PaxServerBuilder, PreparedQuery, ServerStats};
    pub use paxml_core::{
        Algorithm, AnswerItem, Deployment, EvalOptions, ExecMode, ExecReport, PaxError, PaxResult,
        QueryOutcome, UpdateOutcome,
    };
    // The pre-`PaxServer` entry points, kept for one release; see
    // MIGRATION.md for the mapping to the session API.
    #[allow(deprecated)]
    pub use paxml_core::IncrementalEngine;
    pub use paxml_core::{
        batch, incremental, naive, pax2, pax3, BatchReport, EvaluationReport, IncrementalReport,
    };
    pub use paxml_distsim::Placement;
    pub use paxml_fragment::{fragment_at, strategy, FragmentId, FragmentedTree, UpdateOp};
    pub use paxml_xml::{parse as parse_xml, TreeBuilder, XmlTree};
    pub use paxml_xpath::{centralized, compile_text, parse as parse_query};
}

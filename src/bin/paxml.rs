//! `paxml` — command-line front end for the distributed XPath engine.
//!
//! ```text
//! paxml query <file.xml> <xpath> [options]     evaluate a query (simulated sites)
//! paxml cluster <file.xml> <xpath> [options]   evaluate over real site processes (TCP)
//! paxml fragment <file.xml> [options]          show how a document fragments
//! paxml compare <file.xml> <xpath> [options]   run every algorithm and compare costs
//! paxml stats <file.xml> <xpath> [options]     deploy, run the query, show per-site load
//! paxml site --listen <addr>                   run one site server (used by `cluster`)
//! paxml help                                   this text
//!
//! options:
//!   --cut-label <label>      cut a fragment at every element with this label
//!                            (repeatable; default: the root's children)
//!   --cut-size <nodes>       cut fragments greedily at this node budget
//!   --sites <n>              number of sites (default 4)
//!   --algorithm <name>       pax2 | pax3 | naive | centralized (default pax2)
//!   --annotations            enable the XPath-annotation optimization (§5)
//!   --show-answers <n>       print at most n answers (default 10)
//!   --rebalance              (stats) run one planner pass and show the load again
//! ```
//!
//! `query`, `fragment` and `compare` simulate the distribution in-process
//! (see `paxml::distsim`). `cluster` is the real thing in miniature: it
//! spawns `--sites` copies of this binary as `paxml site` child processes,
//! ships each its fragments over TCP, runs the query through
//! `paxml::wire::TcpCluster`, and tears the processes down afterwards —
//! same algorithms, same answers, same byte charges as the simulation.

use paxml::prelude::*;
use paxml::xpath::semantics;
use std::process::ExitCode;

struct Options {
    cut_labels: Vec<String>,
    cut_size: Option<usize>,
    sites: usize,
    algorithm: String,
    annotations: bool,
    show_answers: usize,
    rebalance: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            cut_labels: Vec::new(),
            cut_size: None,
            sites: 4,
            algorithm: "pax2".to_string(),
            annotations: false,
            show_answers: 10,
            rebalance: false,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "help" | "--help" | "-h" => {
            print_help();
            ExitCode::SUCCESS
        }
        "query" | "fragment" | "compare" | "cluster" | "stats" => match run(command, &args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::from(1)
            }
        },
        "site" => match run_site(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::from(1)
            }
        },
        other => {
            eprintln!("error: unknown command {other:?} (try `paxml help`)");
            ExitCode::from(2)
        }
    }
}

fn print_help() {
    println!(
        "paxml — distributed XPath query evaluation with performance guarantees\n\
         \n\
         usage:\n\
         \u{20}  paxml query <file.xml> <xpath> [options]     evaluate a query (simulated sites)\n\
         \u{20}  paxml cluster <file.xml> <xpath> [options]   evaluate over real site processes (TCP)\n\
         \u{20}  paxml fragment <file.xml> [options]          show how a document fragments\n\
         \u{20}  paxml compare <file.xml> <xpath> [options]   run every algorithm and compare costs\n\
         \u{20}  paxml stats <file.xml> <xpath> [options]     deploy, run the query, show per-site load\n\
         \u{20}  paxml site --listen <addr>                   run one site server (used by `cluster`)\n\
         \n\
         options:\n\
         \u{20}  --cut-label <label>   cut a fragment at every element with this label (repeatable)\n\
         \u{20}  --cut-size <nodes>    cut fragments greedily at this node budget\n\
         \u{20}  --sites <n>           number of sites (default 4)\n\
         \u{20}  --algorithm <name>    pax2 | pax3 | naive | centralized (default pax2)\n\
         \u{20}  --annotations         enable the XPath-annotation optimization\n\
         \u{20}  --show-answers <n>    print at most n answers (default 10)\n\
         \u{20}  --rebalance           (stats) run one planner pass and show the load again"
    );
}

fn run(command: &str, rest: &[String]) -> Result<(), String> {
    let file = rest.first().ok_or("missing <file.xml> argument")?;
    let (query_text, option_args) = if command == "fragment" {
        (None, &rest[1..])
    } else {
        let q = rest.get(1).ok_or("missing <xpath> argument")?;
        (Some(q.clone()), &rest[2..])
    };
    let options = parse_options(option_args)?;

    let source = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let tree = parse_xml(&source).map_err(|e| format!("cannot parse {file}: {e}"))?;
    let fragmented = fragment_document(&tree, &options)?;

    match command {
        "fragment" => show_fragmentation(&fragmented),
        "query" => {
            let query_text = query_text.expect("query command always has a query");
            run_query(&tree, &fragmented, &query_text, &options)?;
        }
        "compare" => {
            let query_text = query_text.expect("compare command always has a query");
            compare_algorithms(&tree, &fragmented, &query_text, &options)?;
        }
        "cluster" => {
            let query_text = query_text.expect("cluster command always has a query");
            run_cluster(&fragmented, &query_text, &options)?;
        }
        "stats" => {
            let query_text = query_text.expect("stats command always has a query");
            run_stats(&fragmented, &query_text, &options)?;
        }
        _ => unreachable!("validated by main"),
    }
    Ok(())
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options::default();
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1).cloned().ok_or_else(|| format!("{flag} expects a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--cut-label" => {
                options.cut_labels.push(value(args, i, "--cut-label")?);
                i += 2;
            }
            "--cut-size" => {
                options.cut_size = Some(
                    value(args, i, "--cut-size")?
                        .parse()
                        .map_err(|_| "--cut-size expects a number")?,
                );
                i += 2;
            }
            "--sites" => {
                options.sites =
                    value(args, i, "--sites")?.parse().map_err(|_| "--sites expects a number")?;
                i += 2;
            }
            "--algorithm" => {
                options.algorithm = value(args, i, "--algorithm")?;
                i += 2;
            }
            "--annotations" => {
                options.annotations = true;
                i += 1;
            }
            "--rebalance" => {
                options.rebalance = true;
                i += 1;
            }
            "--show-answers" => {
                options.show_answers = value(args, i, "--show-answers")?
                    .parse()
                    .map_err(|_| "--show-answers expects a number")?;
                i += 2;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(options)
}

fn fragment_document(tree: &XmlTree, options: &Options) -> Result<FragmentedTree, String> {
    let fragmented = if !options.cut_labels.is_empty() {
        let labels: Vec<&str> = options.cut_labels.iter().map(String::as_str).collect();
        strategy::cut_at_labels(tree, &labels)
    } else if let Some(budget) = options.cut_size {
        strategy::cut_by_size(tree, budget)
    } else {
        strategy::cut_children_of_root(tree)
    };
    fragmented.map_err(|e| format!("fragmentation failed: {e}"))
}

fn show_fragmentation(fragmented: &FragmentedTree) {
    println!(
        "{} fragments, {} nodes total",
        fragmented.fragment_count(),
        fragmented.total_real_nodes()
    );
    let ft = &fragmented.fragment_tree;
    for &id in ft.ids() {
        let fragment = fragmented.fragment(id).expect("ids come from the fragment tree");
        let indent = "  ".repeat(ft.depth(id));
        let annotation =
            ft.annotation(id).map(|a| a.to_string()).unwrap_or_else(|| "(root)".to_string());
        println!(
            "{indent}{id}: <{}> {} nodes, {} sub-fragments, annotation: {annotation}",
            fragment.root_label,
            fragment.size(),
            ft.children(id).len(),
        );
    }
}

/// Spin up a `PaxServer` session over the fragmented document.
fn server(
    fragmented: &FragmentedTree,
    options: &Options,
    algorithm: Algorithm,
    annotations: bool,
) -> Result<PaxServer, String> {
    PaxServer::builder()
        .algorithm(algorithm)
        .annotations(annotations)
        .placement(Placement::RoundRobin)
        .sites(options.sites.max(1))
        .deploy(fragmented)
        .map_err(|e| e.to_string())
}

fn run_query(
    tree: &XmlTree,
    fragmented: &FragmentedTree,
    query_text: &str,
    options: &Options,
) -> Result<(), String> {
    let algorithm = match options.algorithm.as_str() {
        "pax2" => Algorithm::PaX2,
        "pax3" => Algorithm::PaX3,
        "naive" => Algorithm::NaiveCentralized,
        "centralized" => {
            // No distribution at all: evaluate over the original document.
            let result = centralized::evaluate(tree, query_text).map_err(|e| e.to_string())?;
            println!("{} answers ({} elementary operations)", result.answers.len(), result.ops);
            print_answer_nodes(tree, &result.answers, options.show_answers);
            return Ok(());
        }
        other => return Err(format!("unknown algorithm {other:?}")),
    };
    let server = server(fragmented, options, algorithm, options.annotations)?;
    let report = server.query_once(query_text).map_err(|e| e.to_string())?;

    println!("{}", report.summary());
    let answers = report.answers();
    for item in answers.iter().take(options.show_answers) {
        match &item.text {
            Some(text) => println!("  <{}> {}", item.label, text),
            None => println!("  <{}>", item.label),
        }
    }
    if answers.len() > options.show_answers {
        println!("  … and {} more", answers.len() - options.show_answers);
    }
    Ok(())
}

/// `paxml site --listen <addr>`: one site of a TCP cluster. Announces the
/// bound address on stdout (`LISTENING <addr>` — the OS picks the port for
/// `:0`), then serves fragments until a shutdown message arrives.
fn run_site(rest: &[String]) -> Result<(), String> {
    use std::io::Write;
    let mut listen = String::from("127.0.0.1:0");
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--listen" => {
                listen = rest
                    .get(i + 1)
                    .cloned()
                    .ok_or_else(|| "--listen expects an address".to_string())?;
                i += 2;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    let server = paxml::wire::SiteServer::bind(listen.as_str())
        .map_err(|e| format!("cannot listen on {listen}: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!("{}{addr}", paxml::wire::process::LISTENING_PREFIX);
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    server.run().map_err(|e| e.to_string())
}

/// `paxml cluster`: the same evaluation as `query`, but over `--sites`
/// real site processes (spawned from this very binary) behind TCP.
fn run_cluster(
    fragmented: &FragmentedTree,
    query_text: &str,
    options: &Options,
) -> Result<(), String> {
    let algorithm = match options.algorithm.as_str() {
        "pax2" => Algorithm::PaX2,
        "pax3" => Algorithm::PaX3,
        "naive" => Algorithm::NaiveCentralized,
        "centralized" => {
            return Err(
                "`cluster` distributes the document; use `query` for centralized".to_string()
            )
        }
        other => return Err(format!("unknown algorithm {other:?}")),
    };
    let program = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
    let sites = options.sites.max(1);
    println!("spawning {sites} site processes …");
    let cluster =
        paxml::wire::ProcessCluster::spawn(&program, fragmented, sites, Placement::RoundRobin)
            .map_err(|e| e.to_string())?;
    for site in cluster.addresses() {
        println!("  site listening on {site}");
    }
    let server = PaxServer::builder()
        .algorithm(algorithm)
        .annotations(options.annotations)
        .deploy_over(fragmented, cluster.transport.clone())
        .map_err(|e| e.to_string())?;
    let report = server.query_once(query_text).map_err(|e| e.to_string())?;

    println!("{}", report.summary());
    let answers = report.answers();
    for item in answers.iter().take(options.show_answers) {
        match &item.text {
            Some(text) => println!("  <{}> {}", item.label, text),
            None => println!("  <{}>", item.label),
        }
    }
    if answers.len() > options.show_answers {
        println!("  … and {} more", answers.len() - options.show_answers);
    }
    // Dropping the server and the cluster sends each site a clean shutdown
    // message, then reaps the child processes.
    println!("shutting the cluster down …");
    Ok(())
}

/// `paxml stats`: deploy the document, run the query, and print the
/// server's load breakdown — epoch/topology versions plus what each site
/// stores and has served. With `--rebalance`, run one cost-model planner
/// pass over the deployment and show the load again.
fn run_stats(
    fragmented: &FragmentedTree,
    query_text: &str,
    options: &Options,
) -> Result<(), String> {
    let algorithm = match options.algorithm.as_str() {
        "pax2" => Algorithm::PaX2,
        "pax3" => Algorithm::PaX3,
        "naive" => Algorithm::NaiveCentralized,
        "centralized" => {
            return Err(
                "`stats` meters a distributed deployment; use `query` for centralized".to_string()
            )
        }
        other => return Err(format!("unknown algorithm {other:?}")),
    };
    let server = server(fragmented, options, algorithm, options.annotations)?;
    let prepared = server.prepare(query_text).map_err(|e| e.to_string())?;
    let report = server.execute(&prepared).map_err(|e| e.to_string())?;
    println!("{}", report.summary());
    println!();
    print_server_stats(&server);

    if options.rebalance {
        let outcome =
            paxml::rebalance::rebalance(&server, &paxml::rebalance::PlannerOptions::default())
                .map_err(|e| e.to_string())?;
        println!();
        if outcome.ops.is_empty() {
            println!("rebalance: the deployment is already balanced, nothing moved");
        } else {
            println!(
                "rebalance: {} migration(s), max site bytes {} -> {}",
                outcome.ops.len(),
                outcome.max_site_bytes_before,
                outcome.max_site_bytes_after
            );
            for op in &outcome.ops {
                if let paxml::rebalance::RefragOp::Migrate { fragment, from, to } = op {
                    println!("  move {fragment} from {from} to {to}");
                }
            }
            println!();
            print_server_stats(&server);
        }
    }
    Ok(())
}

/// The `server_stats()` table: epoch/topology state, then one row per site.
fn print_server_stats(server: &PaxServer) {
    let stats = server.server_stats();
    println!(
        "epoch {}   placement version {}   live epochs {}   retired {}   session cache {} bytes",
        stats.current_epoch,
        stats.placement_version,
        stats.live_epochs,
        stats.retired_epochs,
        stats.session_cache_bytes
    );
    println!(
        "{:<8} {:>10} {:>16} {:>8} {:>14}",
        "site", "fragments", "resident bytes", "visits", "bytes served"
    );
    for load in &stats.site_loads {
        println!(
            "{:<8} {:>10} {:>16} {:>8} {:>14}",
            load.site.to_string(),
            load.fragment_count,
            load.resident_bytes,
            load.visits,
            load.bytes_served
        );
    }
    println!("max site bytes: {}", stats.max_site_bytes());
}

fn print_answer_nodes(tree: &XmlTree, answers: &[paxml::xml::NodeId], limit: usize) {
    for &node in answers.iter().take(limit) {
        match tree.text_of(node) {
            Some(text) => println!("  <{}> {}", tree.label(node).unwrap_or("?"), text),
            None => println!("  <{}>", tree.label(node).unwrap_or("?")),
        }
    }
    if answers.len() > limit {
        println!("  … and {} more", answers.len() - limit);
    }
}

fn compare_algorithms(
    tree: &XmlTree,
    fragmented: &FragmentedTree,
    query_text: &str,
    options: &Options,
) -> Result<(), String> {
    // Sanity reference first (also catches query syntax errors early).
    let reference = centralized::evaluate(tree, query_text).map_err(|e| e.to_string())?;
    let oracle = semantics::oracle_eval(tree, query_text).map_err(|e| e.to_string())?;
    if reference.answers.len() != oracle.len() {
        return Err("internal error: the two centralized evaluators disagree".to_string());
    }

    println!(
        "query: {query_text}\nfragments: {}   sites: {}   reference answers: {}\n",
        fragmented.fragment_count(),
        options.sites,
        reference.answers.len()
    );
    println!(
        "{:<22} {:>8} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "algorithm", "answers", "visits", "bytes", "total ops", "parallel ops", "fragments"
    );

    let combos: Vec<(&str, Algorithm, bool)> = vec![
        ("PaX3-NA", Algorithm::PaX3, false),
        ("PaX3-XA", Algorithm::PaX3, true),
        ("PaX2-NA", Algorithm::PaX2, false),
        ("PaX2-XA", Algorithm::PaX2, true),
        ("NaiveCentralized", Algorithm::NaiveCentralized, false),
    ];

    for (label, algorithm, annotations) in combos {
        let server = server(fragmented, options, algorithm, annotations)?;
        let report = server.query_once(query_text).map_err(|e| e.to_string())?;
        if report.answers().len() != reference.answers.len() {
            return Err(format!(
                "{label} returned {} answers but the centralized reference returned {}",
                report.answers().len(),
                reference.answers.len()
            ));
        }
        println!(
            "{:<22} {:>8} {:>8} {:>12} {:>12} {:>12} {:>10}",
            label,
            report.answers().len(),
            report.max_visits_per_site(),
            report.network_bytes(),
            report.total_ops(),
            report.parallel_ops(),
            report.queries.first().map(|q| q.fragments_evaluated).unwrap_or(0),
        );
    }
    println!("\nall algorithms returned exactly the centralized answer set");
    Ok(())
}

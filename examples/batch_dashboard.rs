//! A throughput dashboard for the batch evaluation engine: a mixed workload
//! of XMark queries is evaluated over one FT2 deployment, first one query at
//! a time (the paper's per-query PaX2) and then as a single batch sharing
//! site visits, and the cost meters are printed side by side.
//!
//! Run with: `cargo run --release --example batch_dashboard [total_vMB]`

use paxml::prelude::*;
use paxml::xmark::{ft2, PAPER_QUERIES};
use std::time::Instant;

/// The paper's four queries plus dashboard-style variations, as one mixed
/// multi-tenant workload.
fn workload() -> Vec<String> {
    let mut queries: Vec<String> = PAPER_QUERIES.iter().map(|(_, q)| q.to_string()).collect();
    queries.extend(
        [
            "/sites/site/people/person/name",
            "//person[address/country=\"US\"]/name",
            "/sites/site/regions//item[quantity > 5]/name",
            "//open_auctions/auction/bidder/increase",
            "//closed_auctions/closed_auction[quantity >= 2]/price",
            "/sites/site/people/person[creditcard]/emailaddress",
            "//annotation/description/text",
            "//person[not(address/country=\"US\")]/address/city",
        ]
        .iter()
        .map(|q| q.to_string()),
    );
    queries
}

fn main() {
    let total_vmb: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(3.0);
    let sites = 10;
    let (tree, fragmented) = ft2(total_vmb, 2026);
    let queries = workload();
    println!(
        "deployment: {} nodes over {} fragments on {} sites; workload: {} queries\n",
        tree.node_count(),
        fragmented.fragment_count(),
        sites,
        queries.len()
    );

    // One long-lived session serves both series; every execution reports
    // its own meters (no reset() calls anywhere).
    let server = PaxServer::builder()
        .algorithm(Algorithm::PaX2)
        .sites(sites)
        .placement(Placement::RoundRobin)
        .deploy(&fragmented)
        .expect("valid configuration");

    // ------------------------------------------------ one query at a time
    let start = Instant::now();
    let mut single_rounds = 0u32;
    let mut single_visits = 0u32;
    let mut single_bytes = 0u64;
    let mut single_answers = 0usize;
    for query in &queries {
        let report = server.query_once(query).unwrap();
        single_rounds += report.rounds();
        single_visits += report.max_visits_per_site();
        single_bytes += report.network_bytes();
        single_answers += report.answers().len();
    }
    let single_elapsed = start.elapsed();

    // ------------------------------------------------------- one batch
    let batch = server.execute_batch_text(&queries).unwrap();

    println!("{:<26} {:>14} {:>14}", "metric", "one-at-a-time", "batched");
    let rows: Vec<(&str, String, String)> = vec![
        ("coordinator rounds", single_rounds.to_string(), batch.rounds().to_string()),
        (
            "visits max/site (total)",
            single_visits.to_string(),
            batch.max_visits_per_site().to_string(),
        ),
        ("network bytes", single_bytes.to_string(), batch.network_bytes().to_string()),
        ("answers", single_answers.to_string(), batch.total_answers().to_string()),
        ("wall-clock", format!("{single_elapsed:.2?}"), format!("{:.2?}", batch.elapsed)),
        (
            "queries/second",
            format!("{:.0}", queries.len() as f64 / single_elapsed.as_secs_f64()),
            format!("{:.0}", batch.queries_per_second()),
        ),
    ];
    for (metric, single, batched) in rows {
        println!("{metric:<26} {single:>14} {batched:>14}");
    }

    println!("\nper-query answers (batch):");
    for outcome in &batch.queries {
        println!("  {:>5} answers  {}", outcome.answers.len(), outcome.query);
    }
    println!("\n{}", batch.summary());

    // The whole point, asserted:
    assert!(batch.max_visits_per_site() <= 2, "batch must respect the PaX2 visit bound");
    assert_eq!(single_answers, batch.total_answers(), "batch must not change any answer");
}

//! The paper's running example, end to end: the investment-company
//! clientele of Fig. 1, fragmented as in Fig. 2 (five fragments F0–F4 over
//! four sites), queried with the queries the paper walks through in §1–§5.
//!
//! Run with: `cargo run --example investment_clientele`

use paxml::prelude::*;
use paxml::xmark::{clientele_fragmentation, CLIENTELE_QUERY_EXAMPLES};
use paxml_distsim::SiteId;
use std::collections::BTreeMap;

fn main() {
    let (tree, fragmented) = clientele_fragmentation();
    println!(
        "Fig. 1 clientele: {} nodes, {} fragments",
        tree.node_count(),
        fragmented.fragment_count()
    );

    // Mirror Fig. 2's placement: F0 at the company's US server (S0), F1 at
    // S1, the two NASDAQ market fragments at S2, Lisa's Canadian data at S3.
    let mut assignment = BTreeMap::new();
    assignment.insert(FragmentId(0), SiteId(0));
    assignment.insert(FragmentId(1), SiteId(1));
    assignment.insert(FragmentId(2), SiteId(2));
    assignment.insert(FragmentId(3), SiteId(2));
    assignment.insert(FragmentId(4), SiteId(3));
    println!("\nfragment tree (with XPath annotations of Fig. 6):");
    for &id in fragmented.fragment_tree.ids() {
        let annotation = fragmented
            .fragment_tree
            .annotation(id)
            .map(|a| a.to_string())
            .unwrap_or_else(|| "(root)".into());
        println!(
            "  {id} -> site {:?}, annotation: {annotation}",
            assignment.get(&id).copied().unwrap_or(SiteId(0))
        );
    }

    // One long-lived session serves every example query over the Fig. 2
    // placement; each execution reports its own meters.
    let server = PaxServer::builder()
        .algorithm(Algorithm::PaX2)
        .annotations(true)
        .sites(4)
        .assignment(assignment.clone())
        .deploy(&fragmented)
        .expect("valid configuration");

    for (query, description) in CLIENTELE_QUERY_EXAMPLES {
        println!("\n=== {description}\n    {query}");
        let report = server.query_once(query).unwrap();
        let texts = report.answer_texts();
        if texts.is_empty() {
            println!("    answers: {} node(s)", report.answers().len());
        } else {
            println!("    answers: {texts:?}");
        }
        println!(
            "    PaX2-XA: {} of {} fragments evaluated, ≤{} visits/site, {} bytes on the wire",
            report.queries[0].fragments_evaluated,
            report.fragments_total,
            report.max_visits_per_site(),
            report.network_bytes(),
        );

        // Cross-check against centralized evaluation on the unfragmented tree.
        let reference = centralized::evaluate(&tree, query).unwrap();
        assert_eq!(report.answers().len(), reference.answers.len());
    }

    println!("\nAll distributed answers match the centralized reference.");
}

//! Quickstart: build a small document, fragment it, deploy it over a few
//! simulated sites behind a [`PaxServer`] session, and run the same query
//! with PaX3, PaX2 and the naive baseline, printing the performance
//! counters next to the answers.
//!
//! Run with: `cargo run --example quickstart`

use paxml::prelude::*;

fn main() {
    // 1. An XML document (parsed from text; any XML source works).
    let document = parse_xml(
        "<library>\
           <shelf id=\"s1\">\
             <book><title>Partial Evaluation</title><year>1993</year><price>120</price></book>\
             <book><title>Distributed Systems</title><year>2007</year><price>75</price></book>\
           </shelf>\
           <shelf id=\"s2\">\
             <book><title>XML Processing</title><year>2004</year><price>50</price></book>\
             <book><title>Query Languages</title><year>2007</year><price>95</price></book>\
           </shelf>\
         </library>",
    )
    .expect("well-formed XML");

    // 2. Fragment it: every shelf becomes its own fragment (stored, say, at
    //    the branch that owns the shelf), the root stays at headquarters.
    let fragmented = strategy::cut_at_labels(&document, &["shelf"]).expect("valid cuts");
    println!(
        "fragmented the library into {} fragments ({} nodes total)",
        fragmented.fragment_count(),
        fragmented.total_real_nodes()
    );

    // 3. Serve the fragments from three simulated sites: one PaxServer
    //    session per algorithm/optimization combination.
    let query = "shelf/book[year/val() >= 2007]/title";
    println!("query: {query}\n");

    for (name, algorithm, annotations) in [
        ("PaX3 (no annotations)", Algorithm::PaX3, false),
        ("PaX2 (with annotations)", Algorithm::PaX2, true),
        ("NaiveCentralized", Algorithm::NaiveCentralized, false),
    ] {
        let server = PaxServer::builder()
            .algorithm(algorithm)
            .annotations(annotations)
            .placement(Placement::RoundRobin)
            .sites(3)
            .deploy(&fragmented)
            .expect("valid configuration");
        let prepared = server.prepare(query).expect("query compiles");
        let report = server.execute(&prepared).expect("query evaluates");
        println!("== {name}");
        println!("   answers: {:?}", report.answer_texts());
        println!(
            "   visits/site: {}   network bytes: {}   total ops: {}   parallel time: {:?}",
            report.max_visits_per_site(),
            report.network_bytes(),
            report.total_ops(),
            report.parallel_time(),
        );
        // Prepared queries are compiled once; on a PaX2 server a re-execution
        // is even served from the residual-vector cache with zero visits.
        let again = server.execute(&prepared).expect("query re-evaluates");
        if again.from_cache {
            println!("   re-execution: served from cache, {} visits", again.max_visits_per_site());
        }
        println!();
    }

    // 4. The centralized evaluator doubles as a correctness oracle.
    let reference = centralized::evaluate(&document, query).unwrap();
    println!(
        "centralized reference found {} answers — the distributed algorithms agree.",
        reference.answers.len()
    );
}

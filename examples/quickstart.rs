//! Quickstart: build a small document, fragment it, distribute it over a few
//! simulated sites, and run the same query with PaX3, PaX2 and the naive
//! baseline, printing the performance counters next to the answers.
//!
//! Run with: `cargo run --example quickstart`

use paxml::prelude::*;

fn main() {
    // 1. An XML document (parsed from text; any XML source works).
    let document = parse_xml(
        "<library>\
           <shelf id=\"s1\">\
             <book><title>Partial Evaluation</title><year>1993</year><price>120</price></book>\
             <book><title>Distributed Systems</title><year>2007</year><price>75</price></book>\
           </shelf>\
           <shelf id=\"s2\">\
             <book><title>XML Processing</title><year>2004</year><price>50</price></book>\
             <book><title>Query Languages</title><year>2007</year><price>95</price></book>\
           </shelf>\
         </library>",
    )
    .expect("well-formed XML");

    // 2. Fragment it: every shelf becomes its own fragment (stored, say, at
    //    the branch that owns the shelf), the root stays at headquarters.
    let fragmented = strategy::cut_at_labels(&document, &["shelf"]).expect("valid cuts");
    println!(
        "fragmented the library into {} fragments ({} nodes total)",
        fragmented.fragment_count(),
        fragmented.total_real_nodes()
    );

    // 3. Deploy the fragments over three simulated sites.
    let query = "shelf/book[year/val() >= 2007]/title";
    println!("query: {query}\n");

    for (name, report) in [
        (
            "PaX3 (no annotations)",
            pax3::evaluate(
                &mut Deployment::new(&fragmented, 3, Placement::RoundRobin),
                query,
                &EvalOptions::without_annotations(),
            )
            .unwrap(),
        ),
        (
            "PaX2 (with annotations)",
            pax2::evaluate(
                &mut Deployment::new(&fragmented, 3, Placement::RoundRobin),
                query,
                &EvalOptions::with_annotations(),
            )
            .unwrap(),
        ),
        (
            "NaiveCentralized",
            naive::evaluate(&mut Deployment::new(&fragmented, 3, Placement::RoundRobin), query)
                .unwrap(),
        ),
    ] {
        println!("== {name}");
        println!("   answers: {:?}", report.answer_texts());
        println!(
            "   visits/site: {}   network bytes: {}   total ops: {}   parallel time: {:?}",
            report.max_visits_per_site(),
            report.network_bytes(),
            report.total_ops(),
            report.parallel_time(),
        );
        println!();
    }

    // 4. The centralized evaluator doubles as a correctness oracle.
    let reference = centralized::evaluate(&document, query).unwrap();
    println!(
        "centralized reference found {} answers — the distributed algorithms agree.",
        reference.answers.len()
    );
}

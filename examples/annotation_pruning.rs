//! The §5 optimization in action: XPath annotations on the fragment tree
//! let the coordinator rule out fragments that cannot contribute to a query,
//! cutting both the parallel and the total computation cost.
//!
//! Run with: `cargo run --release --example annotation_pruning`

use paxml::prelude::*;
use paxml::xmark::ft2;

fn main() {
    // The FT2 topology of Fig. 8: 10 fragments of unequal sizes, where the
    // regions / open_auctions / closed_auctions subtrees of two sites are
    // separate fragments.
    let (_, fragmented) = ft2(4.0, 7);
    println!("FT2 deployment: {} fragments over 10 sites", fragmented.fragment_count());
    println!("annotated fragment tree:");
    for &id in fragmented.fragment_tree.ids() {
        println!(
            "  {id}: {}",
            fragmented
                .fragment_tree
                .annotation(id)
                .map(|a| a.to_string())
                .unwrap_or_else(|| "(root)".into())
        );
    }

    // Two long-lived sessions over the same topology: with and without the
    // annotation optimization (per-execution meters need no reset calls).
    let server = |annotations: bool| {
        PaxServer::builder()
            .algorithm(Algorithm::PaX2)
            .annotations(annotations)
            .sites(10)
            .placement(Placement::RoundRobin)
            .deploy(&fragmented)
            .expect("valid configuration")
    };
    let with_na = server(false);
    let with_xa = server(true);

    for (query_name, query) in [
        ("Q1 (people/person — prunable)", "/sites/site/people/person"),
        (
            "Q2 (open_auctions//annotation — partially prunable)",
            "/sites/site/open_auctions//annotation",
        ),
        (
            "Q3 (qualifiers on person)",
            "/sites/site/people/person[profile/age > 20 and address/country=\"US\"]/creditcard",
        ),
        (
            "Q4 (// before people — nothing prunable)",
            "/sites//people/person[profile/age > 20 and address/country=\"US\"]/creditcard",
        ),
    ] {
        println!("\n=== {query_name}");
        let na = with_na.query_once(query).unwrap();
        let xa = with_xa.query_once(query).unwrap();
        assert_eq!(na.answer_origins(), xa.answer_origins());
        println!(
            "  PaX2-NA: {:>2}/{} fragments, parallel {:?}, total cpu {:?}, {} bytes",
            na.queries[0].fragments_evaluated,
            na.fragments_total,
            na.parallel_time(),
            na.total_computation_time(),
            na.network_bytes()
        );
        println!(
            "  PaX2-XA: {:>2}/{} fragments, parallel {:?}, total cpu {:?}, {} bytes",
            xa.queries[0].fragments_evaluated,
            xa.fragments_total,
            xa.parallel_time(),
            xa.total_computation_time(),
            xa.network_bytes()
        );
        let saved = 100.0
            * (1.0
                - xa.total_computation_time().as_secs_f64()
                    / na.total_computation_time().as_secs_f64().max(1e-9));
        println!(
            "  -> total computation saved by annotations: {saved:.0}%  (answers identical: {})",
            na.answers().len()
        );
    }
}

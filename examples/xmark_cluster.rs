//! An XMark-style deployment, as in the paper's experimental study: a
//! `sites` document generated at a configurable scale, fragmented per site
//! (FT1) and spread over ten simulated machines; the four queries of Fig. 7
//! are evaluated with PaX3 and PaX2 and the cost counters are printed.
//!
//! Run with: `cargo run --release --example xmark_cluster [total_vMB]`

use paxml::prelude::*;
use paxml::xmark::{ft1, PAPER_QUERIES};

fn main() {
    let total_vmb: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4.0);
    let fragments = 10;
    let (tree, fragmented) = ft1(fragments, total_vmb, 2026);
    println!(
        "generated {} vMB of XMark-like data: {} nodes, {} site fragments + root fragment",
        total_vmb,
        tree.node_count(),
        fragments
    );

    println!(
        "\n{:<4} {:<10} {:>9} {:>12} {:>12} {:>10} {:>8}",
        "qry", "algorithm", "answers", "parallel", "total-cpu", "bytes", "visits"
    );
    for (name, query) in PAPER_QUERIES {
        let reference = centralized::evaluate(&tree, query).unwrap();
        for (label, use_annotations, algorithm) in [
            ("PaX3-NA", false, Algorithm::PaX3),
            ("PaX3-XA", true, Algorithm::PaX3),
            ("PaX2-NA", false, Algorithm::PaX2),
            ("PaX2-XA", true, Algorithm::PaX2),
        ] {
            let server = PaxServer::builder()
                .algorithm(algorithm)
                .annotations(use_annotations)
                .sites(fragments)
                .placement(Placement::RoundRobin)
                .deploy(&fragmented)
                .expect("valid configuration");
            let report = server.query_once(query).unwrap();
            assert_eq!(
                report.answers().len(),
                reference.answers.len(),
                "{name}/{label} disagrees with the centralized reference"
            );
            println!(
                "{:<4} {:<10} {:>9} {:>12?} {:>12?} {:>10} {:>8}",
                name,
                label,
                report.answers().len(),
                report.parallel_time(),
                report.total_computation_time(),
                report.network_bytes(),
                report.max_visits_per_site(),
            );
        }
    }

    println!("\nEvery algorithm returned exactly the centralized answer set.");
}
